"""Translation of trust networks into logic programs (Sect. 2.3, App. B.4).

Two translations are provided:

* :func:`btn_to_program` — the binary translation of Section 2.3 / Appendix
  B.4, with one of five rule patterns per node depending on whether it has an
  explicit belief and zero, one or two parents (with or without a tie).
* :func:`tn_to_program` — the direct translation of a *non-binary* network
  (Appendix B.4, Remark 2 and Example B.2): each non-top parent gets one
  blocking rule per strictly higher-priority parent, plus a blocking rule
  against the node itself when the parent shares its priority with another
  parent, plus the guarded import rule.

Both use the predicates of the appendix listing: ``poss(x, V)`` for the
possible values of user ``x`` and ``conf(x, z, V)`` for the values of parent
``z`` that conflict with the value chosen at ``x``.

The paper proves (Theorem 2.9) that the stable models of the translated
program correspond exactly to the stable solutions of the trust network;
the test suite checks this against both Algorithm 1 and the brute-force
enumerator.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.errors import NetworkError
from repro.core.network import TrustMapping, TrustNetwork, User
from repro.logicprog.atoms import Atom, Literal, Rule, var
from repro.logicprog.program import LogicProgram

#: Predicate names used by the translation (Appendix B.4).
POSS = "poss"
CONF = "conf"


def _user_key(user: User) -> str:
    """A stable printable key for a user (aux nodes from binarization included)."""
    return str(user)


def btn_to_program(network: TrustNetwork) -> LogicProgram:
    """Translate a binary trust network into a logic program (Theorem 2.9)."""
    if not network.is_binary():
        raise NetworkError("btn_to_program expects a binary trust network")
    program = LogicProgram()
    value_var = var("X")
    other_var = var("Y")

    for user, belief in network.explicit_beliefs.items():
        value = belief.positive_value
        if value is not None:
            program.add_fact(POSS, _user_key(user), value)

    for user in network.users:
        incoming = sorted(network.incoming(user), key=lambda e: e.priority)
        if not incoming or network.has_explicit_belief(user):
            continue
        if len(incoming) == 1:
            _add_preferred_rule(program, user, incoming[0].parent)
            continue
        low, high = incoming
        if high.priority > low.priority:
            # Case (c): one preferred and one non-preferred parent.
            _add_preferred_rule(program, user, high.parent)
            _add_guarded_rules(program, user, low.parent)
        else:
            # Case (d): two parents tied — both guarded against the node itself.
            _add_guarded_rules(program, user, low.parent)
            _add_guarded_rules(program, user, high.parent)
    return program


def _add_preferred_rule(program: LogicProgram, user: User, parent: User) -> None:
    """``poss(x, X) :- poss(z, X).`` for a preferred (or only) parent."""
    value_var = var("X")
    program.add_rule(
        Rule(
            head=Atom(POSS, (_user_key(user), value_var)),
            body=(Literal.pos(Atom(POSS, (_user_key(parent), value_var))),),
        )
    )


def _add_guarded_rules(program: LogicProgram, user: User, parent: User) -> None:
    """The ``conf`` / guarded-import pair for a non-preferred parent."""
    value_var = var("X")
    other_var = var("Y")
    user_key, parent_key = _user_key(user), _user_key(parent)
    program.add_rule(
        Rule(
            head=Atom(CONF, (user_key, parent_key, value_var)),
            body=(
                Literal.pos(Atom(POSS, (parent_key, value_var))),
                Literal.pos(Atom(POSS, (user_key, other_var))),
                Literal.not_equal(other_var, value_var),
            ),
        )
    )
    program.add_rule(
        Rule(
            head=Atom(POSS, (user_key, value_var)),
            body=(
                Literal.pos(Atom(POSS, (parent_key, value_var))),
                Literal.neg(Atom(CONF, (user_key, parent_key, value_var))),
            ),
        )
    )


def tn_to_program(network: TrustNetwork) -> LogicProgram:
    """Translate an arbitrary (possibly non-binary) trust network directly.

    Follows Appendix B.4, Remark 2: a node with parents ``z1 ≤ … ≤ zk`` (by
    priority) imports the unique top-priority parent unguarded; every other
    parent ``zi`` is blocked by each strictly higher-priority parent, and
    additionally by the node's own value when ``zi`` shares its priority with
    another parent.
    """
    program = LogicProgram()
    value_var = var("X")
    other_var = var("Y")

    for user, belief in network.explicit_beliefs.items():
        value = belief.positive_value
        if value is not None:
            program.add_fact(POSS, _user_key(user), value)

    for user in network.users:
        if network.has_explicit_belief(user):
            # As in the binary translation we treat explicit beliefs as
            # overriding: no import rules for this node (Appendix B.4 case e).
            continue
        incoming = sorted(
            network.incoming(user), key=lambda e: e.priority, reverse=True
        )
        if not incoming:
            continue
        priorities = [edge.priority for edge in incoming]
        user_key = _user_key(user)
        for index, edge in enumerate(incoming):
            higher = [e for e in incoming if e.priority > edge.priority]
            tied = any(
                e is not edge and e.priority == edge.priority for e in incoming
            )
            parent_key = _user_key(edge.parent)
            if not higher and not tied:
                _add_preferred_rule(program, user, edge.parent)
                continue
            for blocker in higher:
                program.add_rule(
                    Rule(
                        head=Atom(CONF, (user_key, parent_key, value_var)),
                        body=(
                            Literal.pos(Atom(POSS, (parent_key, value_var))),
                            Literal.pos(
                                Atom(POSS, (_user_key(blocker.parent), other_var))
                            ),
                            Literal.not_equal(other_var, value_var),
                        ),
                    )
                )
            if tied:
                program.add_rule(
                    Rule(
                        head=Atom(CONF, (user_key, parent_key, value_var)),
                        body=(
                            Literal.pos(Atom(POSS, (parent_key, value_var))),
                            Literal.pos(Atom(POSS, (user_key, other_var))),
                            Literal.not_equal(other_var, value_var),
                        ),
                    )
                )
            program.add_rule(
                Rule(
                    head=Atom(POSS, (user_key, value_var)),
                    body=(
                        Literal.pos(Atom(POSS, (parent_key, value_var))),
                        Literal.neg(Atom(CONF, (user_key, parent_key, value_var))),
                    ),
                )
            )
    return program


def program_size(program: LogicProgram) -> int:
    """Size measure used in the appendix discussion (number of rules)."""
    return program.size()
