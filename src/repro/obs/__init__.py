"""End-to-end observability: tracing, metrics, exporters, run comparison.

The execution stack is five layers deep (engine façade → planner/compiler →
region scheduler → retry funnel → backend); this package makes a run
inspectable without changing what it does.  Pass ``trace=True`` (or a
:class:`Tracer`) to :meth:`repro.engine.ResolutionEngine.materialize` /
``apply`` and the resulting report carries the recorded trace::

    tracer = Tracer()
    report = engine.materialize(compiled=True, tracer=tracer)
    export_chrome_trace(report.trace, "run.json")   # open in Perfetto

The default tracer everywhere is :data:`NULL_TRACER` (``enabled=False``),
so untraced runs pay only an attribute check per instrumented site.
"""

from __future__ import annotations

from repro.obs.compare import compare_runs, format_comparison
from repro.obs.export import (
    chrome_trace,
    export_chrome_trace,
    export_jsonl,
    format_span_tree,
    load_spans,
)
from repro.obs.logs import install_cli_handler
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer, interval_union

__all__ = [
    "NULL_TRACER",
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "Tracer",
    "chrome_trace",
    "compare_runs",
    "export_chrome_trace",
    "export_jsonl",
    "format_comparison",
    "format_span_tree",
    "install_cli_handler",
    "interval_union",
    "load_spans",
]
