"""Diff two recorded runs: per-span-name (and per-phase) deltas.

``compare_runs`` accepts tracers, span lists, or paths to JSON-lines
exports (:func:`repro.obs.export.export_jsonl`), aggregates each side by
span name, and reports count/seconds deltas — the tool that turns two
``BENCH_resolution.json``-style runs into an attributable story ("the
3.55x came out of the flood stages, not the copies").

Also a CLI::

    python -m repro.obs.compare baseline.jsonl candidate.jsonl
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.obs.export import TraceLike, as_spans, load_spans
from repro.obs.trace import Span, interval_union

__all__ = ["compare_runs", "format_comparison"]

RunLike = Union[str, TraceLike]


def _resolve(run: RunLike) -> List[Span]:
    if isinstance(run, str):
        return load_spans(run)
    return as_spans(run)


def _aggregate(spans: Sequence[Span]) -> Dict[str, Dict[str, float]]:
    rows: Dict[str, Dict[str, float]] = {}
    intervals: Dict[str, List[Any]] = {}
    for span in spans:
        if span.instant:
            continue
        row = rows.setdefault(span.name, {"count": 0, "seconds": 0.0})
        row["count"] += 1
        intervals.setdefault(span.name, []).append(span.interval())
    for name, row in rows.items():
        row["seconds"] = interval_union(intervals[name])
    return rows


def compare_runs(
    baseline: RunLike, candidate: RunLike, *, min_seconds: float = 0.0
) -> List[Dict[str, Any]]:
    """Per-span-name comparison of two runs.

    Seconds are interval *unions* per name (overlapped workers counted
    once), so the numbers line up with wall-clock phase attribution.
    Returns one row per span name, sorted by the absolute seconds delta,
    largest first.  ``ratio`` is candidate/baseline seconds (``None`` when
    the baseline had no such spans).
    """
    rows_a = _aggregate(_resolve(baseline))
    rows_b = _aggregate(_resolve(candidate))
    names = sorted(set(rows_a) | set(rows_b))
    comparison: List[Dict[str, Any]] = []
    for name in names:
        a = rows_a.get(name, {"count": 0, "seconds": 0.0})
        b = rows_b.get(name, {"count": 0, "seconds": 0.0})
        if max(a["seconds"], b["seconds"]) < min_seconds:
            continue
        ratio: Optional[float] = None
        if a["seconds"] > 0.0:
            ratio = b["seconds"] / a["seconds"]
        comparison.append(
            {
                "span": name,
                "count_a": int(a["count"]),
                "count_b": int(b["count"]),
                "seconds_a": a["seconds"],
                "seconds_b": b["seconds"],
                "delta_seconds": b["seconds"] - a["seconds"],
                "ratio": ratio,
            }
        )
    comparison.sort(key=lambda row: -abs(row["delta_seconds"]))
    return comparison


def format_comparison(rows: Sequence[Dict[str, Any]]) -> str:
    """Fixed-width table rendering of :func:`compare_runs` output."""
    header = (
        f"{'span':<28} {'count':>11} {'baseline':>10} {'candidate':>10} "
        f"{'delta':>10} {'ratio':>7}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        ratio = "-" if row["ratio"] is None else f"{row['ratio']:.2f}x"
        counts = f"{row['count_a']}->{row['count_b']}"
        lines.append(
            f"{row['span']:<28} {counts:>11} {row['seconds_a']:>9.4f}s "
            f"{row['seconds_b']:>9.4f}s {row['delta_seconds']:>+9.4f}s {ratio:>7}"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.compare",
        description="Diff two recorded traces (JSON-lines span exports).",
    )
    parser.add_argument("baseline", help="span .jsonl written by export_jsonl")
    parser.add_argument("candidate", help="span .jsonl to compare against it")
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.0,
        metavar="S",
        help="hide span names below this many seconds on both sides",
    )
    args = parser.parse_args(argv)
    rows = compare_runs(args.baseline, args.candidate, min_seconds=args.min_seconds)
    sys.stdout.write(format_comparison(rows) + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
