"""Exporters for recorded traces.

Three formats, all zero-dependency:

* :func:`export_jsonl` — one JSON object per span per line; the archival
  format :func:`load_spans` and ``repro.obs.compare`` read back.
* :func:`chrome_trace` / :func:`export_chrome_trace` — the Chrome
  ``trace_event`` JSON format.  Load the file in ``chrome://tracing`` or
  https://ui.perfetto.dev to *see* region/shard overlap: each recorded
  thread (``region-worker0``, ``shard1``, ...) becomes its own track.
* :func:`format_span_tree` — plain-text nested rendering for terminals
  and test failure messages.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.obs.trace import Span, Tracer

__all__ = [
    "chrome_trace",
    "export_chrome_trace",
    "export_jsonl",
    "format_span_tree",
    "load_spans",
]

TraceLike = Union[Tracer, Sequence[Span], Iterable[Span]]


def as_spans(trace: TraceLike) -> List[Span]:
    """Normalise a tracer / span sequence into a plain span list."""
    if isinstance(trace, Tracer):
        return trace.spans
    spans = getattr(trace, "spans", None)
    if spans is not None and not isinstance(trace, (list, tuple)):
        return list(spans)
    return list(trace)  # type: ignore[arg-type]


# -- JSON lines ------------------------------------------------------------


def export_jsonl(trace: TraceLike, path: str) -> int:
    """Write one JSON object per span; returns the number of spans written."""
    spans = as_spans(trace)
    with open(path, "w", encoding="utf-8") as handle:
        for span in spans:
            handle.write(json.dumps(span.to_dict(), sort_keys=True, default=str))
            handle.write("\n")
    return len(spans)


def load_spans(path: str) -> List[Span]:
    """Read a :func:`export_jsonl` file back into :class:`Span` objects."""
    spans: List[Span] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans


# -- Chrome trace_event ----------------------------------------------------


def chrome_trace(trace: TraceLike) -> Dict[str, Any]:
    """Build a Chrome ``trace_event`` document from a recorded trace.

    Complete spans become ``"X"`` (duration) events and instants become
    ``"i"`` events; every distinct recording thread gets a ``tid`` plus a
    ``thread_name`` metadata event so Perfetto labels the tracks.
    Timestamps are microseconds relative to the earliest span.
    """
    spans = sorted(as_spans(trace), key=lambda span: (span.started, span.span_id))
    events: List[Dict[str, Any]] = []
    tids: Dict[str, int] = {}
    origin = spans[0].started if spans else 0.0
    for span in spans:
        tid = tids.get(span.thread)
        if tid is None:
            tid = tids[span.thread] = len(tids) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": span.thread},
                }
            )
        args = {
            key: value
            for key, value in span.tags.items()
            if key != "instant" and value is not None
        }
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        event: Dict[str, Any] = {
            "name": span.name,
            "cat": span.name.split(".", 1)[0],
            "pid": 1,
            "tid": tid,
            "ts": (span.started - origin) * 1e6,
            "args": args,
        }
        if span.instant:
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = span.duration * 1e6
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def export_chrome_trace(trace: TraceLike, path: str) -> int:
    """Write :func:`chrome_trace` output to ``path``; returns event count."""
    document = chrome_trace(trace)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, default=str)
        handle.write("\n")
    return len(document["traceEvents"])


# -- plain text ------------------------------------------------------------


def format_span_tree(trace: TraceLike, *, unit: str = "ms") -> str:
    """Indented plain-text rendering of the span forest.

    Children are ordered by start time under their parent; orphaned spans
    (parent missing from the collection, e.g. a partial export) are
    promoted to roots rather than dropped.
    """
    spans = as_spans(trace)
    scale = 1e3 if unit == "ms" else 1.0
    by_id = {span.span_id: span for span in spans}
    children: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in by_id else None
        children.setdefault(parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda span: (span.started, span.span_id))

    lines: List[str] = []

    def render(span: Span, depth: int) -> None:
        indent = "  " * depth
        tags = {k: v for k, v in span.tags.items() if k != "instant"}
        suffix = f"  {tags}" if tags else ""
        if span.instant:
            lines.append(f"{indent}! {span.name} [{span.thread}]{suffix}")
        else:
            lines.append(
                f"{indent}- {span.name} {span.duration * scale:.3f}{unit} "
                f"[{span.thread}]{suffix}"
            )
        for child in children.get(span.span_id, ()):
            render(child, depth + 1)

    for root in children.get(None, ()):
        render(root, 0)
    return "\n".join(lines)
