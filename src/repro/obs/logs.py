"""Library logging hygiene.

The library itself never configures logging: ``repro/__init__`` attaches a
``NullHandler`` to the root ``repro`` logger, and every module logs through
``logging.getLogger(__name__)``.  Command-line entry points (the
``repro.experiments`` drivers) call :func:`install_cli_handler` once to
route experiment output to stdout.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO

__all__ = ["install_cli_handler"]

#: Marker attribute identifying the handler we installed (idempotence).
_CLI_MARKER = "_repro_cli_handler"


def install_cli_handler(
    level: int = logging.INFO, stream: Optional[TextIO] = None
) -> logging.Handler:
    """Attach a plain ``%(message)s`` stdout handler to the ``repro`` logger.

    Idempotent: calling it again returns the already-installed handler
    (updating its stream/level), so drivers can call it unconditionally.
    """
    logger = logging.getLogger("repro")
    for handler in logger.handlers:
        if getattr(handler, _CLI_MARKER, False):
            if stream is not None and isinstance(handler, logging.StreamHandler):
                handler.setStream(stream)
            handler.setLevel(level)
            if logger.level == logging.NOTSET or logger.level > level:
                logger.setLevel(level)
            return handler
    handler = logging.StreamHandler(stream or sys.stdout)
    handler.setFormatter(logging.Formatter("%(message)s"))
    handler.setLevel(level)
    setattr(handler, _CLI_MARKER, True)
    logger.addHandler(handler)
    logger.setLevel(level)
    return handler
