"""Thread-safe counters and histograms aggregated alongside spans.

The :class:`MetricsRegistry` is deliberately tiny: named monotonically
increasing counters (statements, retries, faults, rows written, bind
params) and named value series summarised as histograms (per-phase
latencies).  Instrumented code increments at the exact sites the execution
reports already count, which is what lets the engine assert that a trace
and its :class:`~repro.bulk.executor.BulkRunReport` agree.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional

__all__ = ["MetricsRegistry"]


def _summary(values: List[float]) -> Dict[str, float]:
    ordered = sorted(values)
    count = len(ordered)
    total = sum(ordered)
    return {
        "count": count,
        "total": total,
        "min": ordered[0],
        "max": ordered[-1],
        "mean": total / count,
        "p50": ordered[(count - 1) // 2],
        "p95": ordered[min(count - 1, (count * 95) // 100)],
    }


class MetricsRegistry:
    """Named counters and histograms, safe to update from many threads."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._histograms: Dict[str, List[float]] = {}

    # -- updates -----------------------------------------------------------

    def counter(self, name: str, value: float = 1) -> None:
        """Add ``value`` (default 1) to the counter ``name``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def histogram(self, name: str, value: float) -> None:
        """Record one observation in the value series ``name``."""
        with self._lock:
            self._histograms.setdefault(name, []).append(float(value))

    # -- reads -------------------------------------------------------------

    def get(self, name: str, default: float = 0) -> float:
        with self._lock:
            return self._counters.get(name, default)

    def counters(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._counters)

    def values(self, name: str) -> List[float]:
        with self._lock:
            return list(self._histograms.get(name, ()))

    def snapshot(self) -> Dict[str, Any]:
        """One JSON-friendly document: counters plus histogram summaries."""
        with self._lock:
            counters = dict(self._counters)
            histograms = {
                name: _summary(values)
                for name, values in self._histograms.items()
                if values
            }
        return {"counters": counters, "histograms": histograms}

    def delta(self, baseline: Dict[str, float]) -> Dict[str, float]:
        """Counter increases since a :meth:`counters` snapshot was taken."""
        current = self.counters()
        names = set(current) | set(baseline)
        return {
            name: current.get(name, 0) - baseline.get(name, 0)
            for name in sorted(names)
            if current.get(name, 0) != baseline.get(name, 0)
        }

    def format(self) -> str:
        """Plain-text rendering of :meth:`snapshot` for CLI output."""
        snap = self.snapshot()
        lines = []
        for name in sorted(snap["counters"]):
            lines.append(f"{name} = {snap['counters'][name]:g}")
        for name in sorted(snap["histograms"]):
            stats = snap["histograms"][name]
            lines.append(
                f"{name}: count={stats['count']} total={stats['total']:.6f}s "
                f"mean={stats['mean']:.6f}s p95={stats['p95']:.6f}s"
            )
        return "\n".join(lines)

    @classmethod
    def from_spans(cls, spans: Iterable[Any]) -> "MetricsRegistry":
        """Aggregate a span list: per-name counts and duration histograms."""
        registry = cls()
        for span in spans:
            if getattr(span, "instant", False):
                registry.counter(f"events.{span.name}")
            else:
                registry.counter(f"spans.{span.name}")
                registry.histogram(f"span_seconds.{span.name}", span.duration)
        return registry


class _NullMetrics:
    """Inert registry attached to the null tracer."""

    __slots__ = ()

    def counter(self, name: str, value: float = 1) -> None:
        return None

    def histogram(self, name: str, value: float) -> None:
        return None

    def get(self, name: str, default: float = 0) -> float:
        return default

    def counters(self) -> Dict[str, float]:
        return {}

    def values(self, name: str) -> List[float]:
        return []

    def snapshot(self) -> Dict[str, Any]:
        return {"counters": {}, "histograms": {}}

    def delta(self, baseline: Dict[str, float]) -> Dict[str, float]:
        return {}

    def format(self) -> str:
        return ""


NULL_METRICS = _NullMetrics()
