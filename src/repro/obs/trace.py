"""Zero-dependency tracing: nested spans with monotonic timings.

A :class:`Tracer` records one :class:`Span` per timed operation.  Spans nest
through a thread-local stack — a span started while another is open on the
same thread becomes its child automatically — and cross-thread edges (the
region-worker pool, per-shard replay lanes) are expressed by passing
``parent=`` explicitly at the thread-spawn point.  Timings come from
``time.perf_counter()`` (monotonic, system-wide on Linux), so spans recorded
on different threads share one timeline and can be compared or unioned.

The default tracer everywhere is :data:`NULL_TRACER`, whose ``enabled``
attribute is ``False``: hot paths guard span creation with a single
attribute check and pay nothing when tracing is off.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.obs.metrics import NULL_METRICS, MetricsRegistry

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "interval_union",
]


def interval_union(intervals: Iterable[Tuple[float, float]]) -> float:
    """Total time covered by ``(start, end)`` intervals, overlaps counted once.

    This is the wall-clock attribution primitive: summing per-worker phase
    timings over-counts whenever two workers overlap, while the union of
    their intervals is exactly the stretch of wall time during which *some*
    worker was in that phase.
    """
    total = 0.0
    cursor: Optional[float] = None
    for start, end in sorted(intervals):
        if end <= start:
            continue
        if cursor is None or start >= cursor:
            total += end - start
            cursor = end
        elif end > cursor:
            total += end - cursor
            cursor = end
    return total


class Span:
    """One timed operation: a name, a parent edge, tags, and two timestamps.

    ``started``/``ended`` are ``time.perf_counter()`` readings; ``duration``
    is their difference.  ``parent_id`` is ``None`` for root spans.  Tags are
    free-form key/value annotations (shard index, region kind, SQL op,
    retry outcome, ...).
    """

    __slots__ = ("name", "span_id", "parent_id", "thread", "started", "ended", "tags")

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        thread: str,
        started: float,
        tags: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.thread = thread
        self.started = started
        self.ended: Optional[float] = None
        self.tags: Dict[str, Any] = tags or {}

    @property
    def duration(self) -> float:
        """Seconds between start and finish (0.0 while still open)."""
        if self.ended is None:
            return 0.0
        return max(0.0, self.ended - self.started)

    @property
    def instant(self) -> bool:
        """True for point-in-time events recorded via :meth:`Tracer.event`."""
        return bool(self.tags.get("instant"))

    def tag(self, **tags: Any) -> "Span":
        """Attach extra tags to an open (or finished) span."""
        self.tags.update(tags)
        return self

    def interval(self) -> Tuple[float, float]:
        ended = self.started if self.ended is None else self.ended
        return (self.started, ended)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread": self.thread,
            "started": self.started,
            "ended": self.ended,
            "tags": self.tags,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        span = cls(
            name=data["name"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            thread=data.get("thread", "?"),
            started=data["started"],
            tags=dict(data.get("tags") or {}),
        )
        span.ended = data.get("ended")
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"thread={self.thread!r}, duration={self.duration:.6f})"
        )


class Tracer:
    """Collects spans from any number of threads.

    Finished spans accumulate under a lock; open spans live on a per-thread
    stack so nesting within a thread needs no bookkeeping at the call site.
    One tracer may observe several runs back to back — exporters and the
    consistency checks snapshot/delta around a run instead of assuming a
    fresh tracer.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._ids = itertools.count(1)
        self._local = threading.local()
        self.metrics = MetricsRegistry()

    # -- span lifecycle ----------------------------------------------------

    def start(self, name: str, parent: Optional[Span] = None, **tags: Any) -> Span:
        """Open a span.  ``parent=`` overrides the thread-local nesting."""
        if parent is None:
            parent = self.current()
        span = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=None if parent is None else parent.span_id,
            thread=threading.current_thread().name,
            started=time.perf_counter(),
            tags=tags or None,
        )
        self._stack().append(span)
        return span

    def finish(self, span: Span) -> Span:
        """Close a span and move it to the finished collection."""
        if span.ended is None:
            span.ended = time.perf_counter()
        stack = self._stack()
        if span in stack:
            while stack and stack[-1] is not span:
                stack.pop()
            if stack:
                stack.pop()
        with self._lock:
            self._spans.append(span)
        return span

    @contextmanager
    def span(
        self, name: str, parent: Optional[Span] = None, **tags: Any
    ) -> Iterator[Span]:
        """Context manager around :meth:`start`/:meth:`finish`."""
        span = self.start(name, parent=parent, **tags)
        try:
            yield span
        finally:
            self.finish(span)

    def event(self, name: str, parent: Optional[Span] = None, **tags: Any) -> Span:
        """Record an instantaneous event (a zero-duration span)."""
        if parent is None:
            parent = self.current()
        now = time.perf_counter()
        span = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=None if parent is None else parent.span_id,
            thread=threading.current_thread().name,
            started=now,
            tags=dict(tags, instant=True),
        )
        span.ended = now
        with self._lock:
            self._spans.append(span)
        return span

    # -- inspection --------------------------------------------------------

    def current(self) -> Optional[Span]:
        """The innermost open span on the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @property
    def spans(self) -> List[Span]:
        """Snapshot of the finished spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def spans_named(self, name: str) -> List[Span]:
        return [span for span in self.spans if span.name == name]

    def since(self, mark: int) -> List[Span]:
        """Finished spans recorded after :meth:`mark` was taken."""
        with self._lock:
            return list(self._spans[mark:])

    def mark(self) -> int:
        """Bookmark the finished-span count (pair with :meth:`since`)."""
        with self._lock:
            return len(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def coverage(self, spans: Optional[Sequence[Span]] = None) -> float:
        """Fraction of the trace's wall window covered by span intervals."""
        spans = self.spans if spans is None else list(spans)
        timed = [span for span in spans if not span.instant]
        if not timed:
            return 0.0
        start = min(span.started for span in timed)
        end = max(span.interval()[1] for span in timed)
        window = end - start
        if window <= 0.0:
            return 1.0
        return interval_union(span.interval() for span in timed) / window

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack


class _NullSpan:
    """Shared inert span handed out by :class:`NullTracer`."""

    __slots__ = ()
    name = ""
    span_id = 0
    parent_id = None
    thread = ""
    started = 0.0
    ended = 0.0
    duration = 0.0
    instant = False
    tags: Dict[str, Any] = {}

    def tag(self, **tags: Any) -> "_NullSpan":
        return self

    def interval(self) -> Tuple[float, float]:
        return (0.0, 0.0)


NULL_SPAN = _NullSpan()


class _NullContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class NullTracer:
    """Do-nothing tracer: the default on every hot path.

    ``enabled`` is ``False`` so instrumented code can skip span construction
    entirely with one attribute check; every method is still safe to call.
    """

    enabled = False
    metrics = NULL_METRICS

    @property
    def spans(self) -> List[Span]:
        return []

    def start(self, name: str, parent: Optional[Span] = None, **tags: Any) -> _NullSpan:
        return NULL_SPAN

    def finish(self, span: Any) -> Any:
        return span

    def span(self, name: str, parent: Optional[Span] = None, **tags: Any) -> _NullContext:
        return _NULL_CONTEXT

    def event(self, name: str, parent: Optional[Span] = None, **tags: Any) -> _NullSpan:
        return NULL_SPAN

    def current(self) -> None:
        return None

    def spans_named(self, name: str) -> List[Span]:
        return []

    def mark(self) -> int:
        return 0

    def since(self, mark: int) -> List[Span]:
        return []

    def clear(self) -> None:
        return None

    def coverage(self, spans: Optional[Sequence[Span]] = None) -> float:
        return 0.0


#: Shared no-op tracer used as the default everywhere tracing is optional.
NULL_TRACER = NullTracer()
