"""Workload generators for every experiment in the paper's evaluation."""

from repro.workloads import (
    bulkload,
    cliques,
    indus,
    oscillators,
    powerlaw,
    updates,
    worstcase,
)
from repro.workloads.bulkload import figure19_network, generate_objects, object_sweep
from repro.workloads.cliques import clique_network
from repro.workloads.indus import all_glyph_networks, trust_network_for_glyph
from repro.workloads.oscillators import oscillator_network, size_sweep
from repro.workloads.powerlaw import WebWorkloadConfig, web_trust_network
from repro.workloads.updates import generate_update_stream
from repro.workloads.worstcase import worstcase_network

__all__ = [
    "WebWorkloadConfig",
    "all_glyph_networks",
    "bulkload",
    "clique_network",
    "cliques",
    "figure19_network",
    "generate_objects",
    "generate_update_stream",
    "indus",
    "object_sweep",
    "oscillator_network",
    "oscillators",
    "powerlaw",
    "size_sweep",
    "trust_network_for_glyph",
    "updates",
    "web_trust_network",
    "worstcase",
    "worstcase_network",
]
