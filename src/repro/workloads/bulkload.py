"""The bulk-insert workload of Figure 8c (network of Figure 19).

The experiment fixes a small trust network — 7 users, 12 mappings, 2 users
with explicit beliefs — and varies the number of objects in the database.
For every object the two explicit users' beliefs are chosen at random to be
either in conflict or in agreement (about half of the objects conflict).

Figure 19 gives the node and mapping counts and marks the two belief users,
but the full priority assignment is not recoverable from the figure; the
network below has the stated counts, a mixture of preferred and tied edges
and a cycle among the derived users, which is the behaviour the experiment
exercises (the substitution is recorded in DESIGN.md).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.bulk.backends import ShardSpec
from repro.core.errors import WorkloadError
from repro.core.network import TrustNetwork

#: The two users carrying explicit beliefs ("dark nodes" in Figure 19).
BELIEF_USERS = ("x6", "x7")


def figure19_network() -> TrustNetwork:
    """The fixed 7-user / 12-mapping network used by the bulk experiment.

    ``x6`` and ``x7`` are the two root users with explicit (per-object)
    beliefs; ``x1`` and ``x5`` have three parents each — the network is not
    binary, exactly as in Figure 19, and the bulk resolver binarizes it
    internally — and ``x4`` / ``x5`` form a cycle so that the SCC-flooding
    step of the plan is exercised.
    """
    network = TrustNetwork()
    users = [f"x{i}" for i in range(1, 8)]
    for user in users:
        network.add_user(user)
    mappings = [
        ("x6", 2, "x2"),
        ("x7", 1, "x2"),
        ("x6", 3, "x1"),
        ("x2", 2, "x1"),
        ("x7", 1, "x1"),
        ("x7", 2, "x3"),
        ("x2", 1, "x3"),
        ("x1", 2, "x4"),
        ("x5", 1, "x4"),
        ("x3", 3, "x5"),
        ("x4", 2, "x5"),
        ("x6", 1, "x5"),
    ]
    for parent, priority, child in mappings:
        network.add_trust(child, parent, priority=priority)
    return network


def chain_network(depth: int) -> TrustNetwork:
    """A ``depth``-stage chain below the two Figure 19 belief users.

    ``d1`` prefers ``x6`` over ``x7``; every later ``d<i>`` copies from its
    predecessor, so the grouped plan is ``depth`` single-parent copy steps
    whose dependency DAG is one long chain — ``dag_stages == depth``.  This
    is the multi-stage workload of the scheduler experiments: with many
    narrow stages, a stage-barrier replay pays one synchronization per
    stage while the pipelined work-queue pays none.
    """
    if depth < 1:
        raise WorkloadError("a chain needs at least one derived user")
    network = TrustNetwork()
    for user in BELIEF_USERS:
        network.add_user(user)
    network.add_trust("d1", BELIEF_USERS[0], priority=2)
    network.add_trust("d1", BELIEF_USERS[1], priority=1)
    for index in range(2, depth + 1):
        network.add_trust(f"d{index}", f"d{index - 1}", priority=1)
    return network


def skeptic_chain_network(
    depth: int, filter_every: int = 4
) -> Tuple[TrustNetwork, Dict[str, Tuple[str, ...]]]:
    """A ``depth``-stage chain with constrained 2-cycles every few links.

    Plain links copy from the predecessor like :func:`chain_network`; every
    ``filter_every``-th link becomes a two-node cycle ``d<i> ↔ m<i>`` whose
    mate prefers a negative-only filter user ``f<i>`` (the Skeptic-test
    shape), so the plan interleaves grouped copies with flood components
    carrying blocked values — the workload of the Skeptic compiled-execution
    experiments.  Returns the network and the negative-constraint mapping
    (``f<i>`` rejects the value ``a<i>``).
    """
    if depth < 1:
        raise WorkloadError("a chain needs at least one derived user")
    if filter_every < 2:
        raise WorkloadError("filters need at least one plain link between them")
    network = TrustNetwork()
    for user in BELIEF_USERS:
        network.add_user(user)
    network.add_trust("d1", BELIEF_USERS[0], priority=2)
    network.add_trust("d1", BELIEF_USERS[1], priority=1)
    constraints: Dict[str, Tuple[str, ...]] = {}
    for index in range(2, depth + 1):
        previous, user = f"d{index - 1}", f"d{index}"
        if index % filter_every == 0:
            mate = f"m{index}"
            network.add_trust(user, previous, priority=2)
            network.add_trust(user, mate, priority=1)
            network.add_trust(mate, f"f{index}", priority=2)
            network.add_trust(mate, user, priority=1)
            constraints[f"f{index}"] = (f"a{index}",)
        else:
            network.add_trust(user, previous, priority=1)
    return network, constraints


def multi_chain_network(
    chains: int, depth: int
) -> Tuple[TrustNetwork, List[str]]:
    """``chains`` independent copy chains, each under its own explicit root.

    Chain ``c`` hangs ``depth`` single-parent copy users below root ``r<c>``;
    the chains share no users, so with one compiled region per chain the
    region dependency DAG is ``chains`` independent components — the
    workload of the concurrent-region-scheduler experiment.  Returns the
    network and the explicit root users.
    """
    if chains < 1 or depth < 1:
        raise WorkloadError("need at least one chain of at least one user")
    network = TrustNetwork()
    roots: List[str] = []
    for chain in range(chains):
        root = f"r{chain}"
        network.add_user(root)
        roots.append(root)
        previous = root
        for index in range(depth):
            user = f"c{chain}u{index}"
            network.add_trust(user, previous, priority=1)
            previous = user
    return network, roots


def count_summary(network: TrustNetwork) -> Dict[str, int]:
    """Users / mappings / belief users of the bulk network (sanity check)."""
    return {
        "users": len(network.users),
        "mappings": len(network.mappings),
        "belief_users": len(BELIEF_USERS),
    }


def generate_objects(
    n_objects: int,
    conflict_probability: float = 0.5,
    seed: int = 0,
    belief_users: Sequence[str] = BELIEF_USERS,
) -> List[Tuple[str, str, str]]:
    """Explicit beliefs for ``n_objects`` objects as (user, key, value) rows.

    For each object the two belief users either agree on a common value or
    conflict on two distinct values, with the given probability of conflict.
    """
    if n_objects < 1:
        raise WorkloadError("at least one object is required")
    if len(belief_users) != 2:
        raise WorkloadError("the bulk workload uses exactly two belief users")
    rng = random.Random(seed)
    rows: List[Tuple[str, str, str]] = []
    first, second = belief_users
    for index in range(n_objects):
        key = f"k{index}"
        if rng.random() < conflict_probability:
            rows.append((first, key, f"a{index}"))
            rows.append((second, key, f"b{index}"))
        else:
            shared = f"a{index}"
            rows.append((first, key, shared))
            rows.append((second, key, shared))
    return rows


def partition_rows(
    rows: Sequence[Tuple[str, str, str]], spec: "ShardSpec | int"
) -> List[List[Tuple[str, str, str]]]:
    """Partition ``(user, key, value)`` rows by object key under a shard spec.

    This is the loading side of the scatter/gather decomposition: every row
    of one object lands on the same shard (routing is a function of the key
    alone), so each partition can be bulk-loaded into its shard's ``POSS``
    relation independently — e.g. by parallel loader processes.  Routing
    defers to :meth:`ShardSpec.partition_rows`, the same code path the
    sharded store loads through, so pre-partitioned rows land exactly where
    the store would put them.
    """
    if isinstance(spec, int):
        spec = ShardSpec.hashed(spec)
    return spec.partition_rows(rows)


def generate_sharded_objects(
    n_objects: int,
    spec: "ShardSpec | int",
    conflict_probability: float = 0.5,
    seed: int = 0,
    belief_users: Sequence[str] = BELIEF_USERS,
) -> List[List[Tuple[str, str, str]]]:
    """The Figure 8c workload pre-partitioned for a sharded store.

    Generates exactly the rows of :func:`generate_objects` (same seed, same
    values) and routes them with :func:`partition_rows`, so a sharded run
    over these partitions resolves the identical data an unsharded run
    loads in one piece.
    """
    rows = generate_objects(
        n_objects,
        conflict_probability=conflict_probability,
        seed=seed,
        belief_users=belief_users,
    )
    return partition_rows(rows, spec)


def object_sweep(max_objects: int, points: int = 6) -> List[int]:
    """A geometric sweep of object counts for the Figure 8c experiment."""
    if max_objects < 1:
        raise WorkloadError("max_objects must be positive")
    if points < 2:
        return [max_objects]
    sizes = []
    current = 10.0
    ratio = (max_objects / current) ** (1 / (points - 1)) if max_objects > 10 else 1.0
    for _ in range(points):
        size = int(round(current))
        if not sizes or size > sizes[-1]:
            sizes.append(min(size, max_objects))
        current *= ratio
    if sizes[-1] != max_objects:
        sizes.append(max_objects)
    return sizes
