"""n-clique trust networks (the binarization size analysis of Figure 11)."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.errors import WorkloadError
from repro.core.network import TrustNetwork


def clique_network(n: int, with_beliefs: bool = True) -> TrustNetwork:
    """A trust network where every user trusts every other user.

    Each user assigns distinct priorities ``1 … n-1`` to the other users, so
    every node has a strict priority order over its ``n - 1`` parents.  When
    ``with_beliefs`` is set, the first two users receive conflicting explicit
    beliefs so that the network can also be resolved, not just binarized.
    """
    if n < 2:
        raise WorkloadError("a clique needs at least two users")
    network = TrustNetwork()
    users = [f"u{i}" for i in range(n)]
    for user in users:
        network.add_user(user)
    for child_index, child in enumerate(users):
        priority = 1
        for parent_index, parent in enumerate(users):
            if parent == child:
                continue
            network.add_trust(child, parent, priority=priority)
            priority += 1
    if with_beliefs:
        network.set_explicit_belief(users[0], "v")
        network.set_explicit_belief(users[1], "w")
    return network


def clique_size_row(network: TrustNetwork) -> Dict[str, int]:
    """The measured ``|U|``, ``|E|`` and ``|U| + |E|`` of a network."""
    return {
        "users": len(network.users),
        "edges": len(network.mappings),
        "size": network.size,
    }
