"""The Indus-script running example (Figures 1 and 2, Examples 1.1 and 1.2).

Three archaeologists — Alice, Bob and Charlie — hold partially conflicting
beliefs about the origin of three Indus glyphs.  Alice trusts Bob (priority
100) and Charlie (priority 50); Bob trusts Alice (priority 80).  Applying the
trust mappings gives Alice the snapshot of Figure 1b: she keeps her own
belief where she has one, and otherwise sees Bob's value because Bob outranks
Charlie.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.network import TrustNetwork

#: The trust mappings of Figure 2 as (parent, priority, child) triples.
TRUST_MAPPINGS: Tuple[Tuple[str, int, str], ...] = (
    ("Bob", 100, "Alice"),
    ("Charlie", 50, "Alice"),
    ("Alice", 80, "Bob"),
)

#: The explicit beliefs of Figure 1a, keyed by glyph.
GLYPH_BELIEFS: Dict[str, Dict[str, str]] = {
    "glyph-ship": {"Alice": "ship hull", "Bob": "cow", "Charlie": "jar"},
    "glyph-fish": {"Bob": "fish", "Charlie": "knot"},
    "glyph-arrow": {"Bob": "arrow", "Charlie": "arrow"},
}

#: Alice's expected snapshot after applying the trust mappings (Figure 1b).
ALICE_SNAPSHOT: Dict[str, str] = {
    "glyph-ship": "ship hull",
    "glyph-fish": "fish",
    "glyph-arrow": "arrow",
}


def trust_network_for_glyph(glyph: str) -> TrustNetwork:
    """The per-object trust network (mappings of Fig. 2, beliefs of Fig. 1a)."""
    network = TrustNetwork(mappings=TRUST_MAPPINGS)
    for user, value in GLYPH_BELIEFS[glyph].items():
        network.set_explicit_belief(user, value)
    return network


def all_glyph_networks() -> Dict[str, TrustNetwork]:
    """Per-glyph trust networks for the whole running example."""
    return {glyph: trust_network_for_glyph(glyph) for glyph in GLYPH_BELIEFS}


def belief_rows() -> List[Tuple[str, str, str]]:
    """The Figure 1a table as (user, key, value) rows for the bulk resolver.

    Only users with beliefs for *every* glyph can be used under the bulk
    assumptions, so this returns the rows of Bob and Charlie; Alice's single
    explicit belief is handled per-object in the examples.
    """
    rows: List[Tuple[str, str, str]] = []
    for glyph, beliefs in GLYPH_BELIEFS.items():
        for user in ("Bob", "Charlie"):
            rows.append((user, glyph, beliefs[user]))
    return rows
