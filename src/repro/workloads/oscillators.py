"""Synthetic many-cycle workload (Figures 5 and 8a).

The paper's first synthetic data set consists of "several, disconnected
4-node clusters of the form from Example 2.6", i.e. copies of the oscillator
of Figure 4b, where one out of two users has an explicit belief.  The network
size reported on the x-axis of the plots is ``|U| + |E|``; each cluster
contributes 4 users and 4 mappings, i.e. 8 size units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.errors import WorkloadError
from repro.core.network import TrustNetwork

#: Size units (|U| + |E|) contributed by a single oscillator cluster.
CLUSTER_SIZE = 8


def oscillator_cluster(
    network: TrustNetwork,
    index: int,
    values: Tuple[str, str] = ("v", "w"),
) -> None:
    """Add one 4-node oscillator cluster (Figure 4b) to ``network``.

    Nodes are named ``c{index}.x1`` … ``c{index}.x4``; ``x3`` and ``x4`` carry
    the explicit beliefs (one out of two users, as in the paper's setup).
    """
    prefix = f"c{index}"
    x1, x2, x3, x4 = (f"{prefix}.x{i}" for i in range(1, 5))
    network.add_trust(x1, x2, priority=100)
    network.add_trust(x1, x3, priority=50)
    network.add_trust(x2, x1, priority=80)
    network.add_trust(x2, x4, priority=40)
    network.set_explicit_belief(x3, values[0])
    network.set_explicit_belief(x4, values[1])


def oscillator_network(
    clusters: int,
    values: Tuple[str, str] = ("v", "w"),
    distinct_values_per_cluster: bool = False,
) -> TrustNetwork:
    """A network of ``clusters`` disconnected oscillators.

    With ``distinct_values_per_cluster`` every cluster uses its own pair of
    values, which keeps the grounded logic program smaller (the active domain
    of each cluster stays at two values); the default shares one global pair,
    as the conflicts in the paper's synthetic workload do.
    """
    if clusters < 1:
        raise WorkloadError("at least one oscillator cluster is required")
    network = TrustNetwork()
    for index in range(clusters):
        if distinct_values_per_cluster:
            cluster_values = (f"v{index}", f"w{index}")
        else:
            cluster_values = values
        oscillator_cluster(network, index, cluster_values)
    return network


def network_size(network: TrustNetwork) -> int:
    """The plotted size measure ``|U| + |E|``."""
    return network.size


def clusters_for_size(target_size: int) -> int:
    """Number of clusters needed to reach (at least) a target ``|U| + |E|``."""
    if target_size < CLUSTER_SIZE:
        raise WorkloadError(f"minimum oscillator network size is {CLUSTER_SIZE}")
    return (target_size + CLUSTER_SIZE - 1) // CLUSTER_SIZE


def size_sweep(max_size: int, points: int = 8, min_size: int = CLUSTER_SIZE) -> List[int]:
    """A geometric sweep of network sizes used by the scaling experiments."""
    if max_size < min_size:
        raise WorkloadError("max_size must be at least min_size")
    if points < 2:
        return [max_size]
    sizes = []
    ratio = (max_size / min_size) ** (1 / (points - 1))
    current = float(min_size)
    for _ in range(points):
        size = int(round(current))
        if not sizes or size > sizes[-1]:
            sizes.append(size)
        current *= ratio
    if sizes[-1] != max_size:
        sizes.append(max_size)
    return sizes
