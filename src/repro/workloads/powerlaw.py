"""Synthetic scale-free trust network (the Figure 8b "web crawl" substitute).

The paper's second data set is a crawl of a top-level web domain (about 270k
domains and 5.4M links): domains are identified with users, hyperlinks with
trust mappings, priorities are random, and the graph is sub-sampled by taking
a random fraction of the edges together with their endpoints.  The crawl
itself is not available offline, so this module generates a synthetic
scale-free directed graph with the same structural properties — a power-law
degree distribution and comparatively few directed cycles — using a
preferential-attachment process, and then applies the same edge-fraction
sampling and random priority assignment.  The substitution is recorded in
DESIGN.md.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.core.errors import WorkloadError
from repro.core.network import TrustNetwork


@dataclass(frozen=True)
class WebWorkloadConfig:
    """Parameters of the synthetic web-like trust network."""

    n_domains: int = 2000
    edges_per_node: int = 3
    belief_fraction: float = 0.3
    n_values: int = 5
    seed: int = 0


def scale_free_digraph(n_domains: int, edges_per_node: int, seed: int) -> nx.DiGraph:
    """A simple directed scale-free graph via preferential attachment.

    Node ``i`` links to ``edges_per_node`` earlier nodes chosen with
    probability proportional to their current degree, and each link is
    oriented randomly, yielding the hub-dominated structure of web link
    graphs without requiring the (multi-edge producing) networkx generator.
    """
    if n_domains < 2:
        raise WorkloadError("the web workload needs at least two domains")
    rng = random.Random(seed)
    graph = nx.DiGraph()
    graph.add_nodes_from(range(n_domains))
    targets: List[int] = [0, 1]
    graph_degrees: List[int] = []
    for node in range(2, n_domains):
        chosen: Set[int] = set()
        for _ in range(min(edges_per_node, node)):
            candidate = rng.choice(targets)
            if candidate == node:
                continue
            chosen.add(candidate)
        for other in chosen:
            if rng.random() < 0.5:
                graph.add_edge(other, node)
            else:
                graph.add_edge(node, other)
            targets.append(other)
            targets.append(node)
    return graph


def sample_edges(
    graph: nx.DiGraph, fraction: float, seed: int
) -> List[Tuple[int, int]]:
    """Randomly sample a fraction of the edges (with both endpoints kept)."""
    if not 0 < fraction <= 1:
        raise WorkloadError("edge fraction must be in (0, 1]")
    rng = random.Random(seed)
    edges = list(graph.edges())
    rng.shuffle(edges)
    keep = max(1, int(round(len(edges) * fraction)))
    return edges[:keep]


def web_trust_network(
    config: WebWorkloadConfig = WebWorkloadConfig(),
    edge_fraction: float = 1.0,
) -> TrustNetwork:
    """Build the sampled web-like trust network with random priorities.

    Every user keeps at most two incoming mappings (the two highest random
    priorities) so that the result is directly a binary trust network, which
    both the Resolution Algorithm and the logic-program translation accept;
    this mirrors the binarization the paper applies to its crawl.
    """
    graph = scale_free_digraph(config.n_domains, config.edges_per_node, config.seed)
    sampled = sample_edges(graph, edge_fraction, config.seed + 1)
    rng = random.Random(config.seed + 2)

    incoming: Dict[int, List[Tuple[int, int]]] = {}
    for parent, child in sampled:
        incoming.setdefault(child, []).append((parent, rng.randint(1, 1_000_000)))

    network = TrustNetwork()
    nodes_in_sample: Set[int] = set()
    for parent, child in sampled:
        nodes_in_sample.add(parent)
        nodes_in_sample.add(child)
    for node in nodes_in_sample:
        network.add_user(f"d{node}")

    for child, parents in incoming.items():
        top_two = sorted(parents, key=lambda item: item[1], reverse=True)[:2]
        for parent, priority in top_two:
            network.add_trust(f"d{child}", f"d{parent}", priority=priority)

    values = [f"val{i}" for i in range(config.n_values)]
    for node in sorted(nodes_in_sample):
        user = f"d{node}"
        if network.incoming(user):
            continue
        if rng.random() < max(config.belief_fraction, 0.0) or not network.incoming(user):
            network.set_explicit_belief(user, rng.choice(values))
    return network


def fraction_sweep(points: int = 6, smallest: float = 0.02) -> List[float]:
    """Edge fractions used for the Figure 8b size sweep."""
    if points < 1:
        raise WorkloadError("at least one sweep point is required")
    fractions = []
    current = smallest
    for _ in range(points):
        fractions.append(min(1.0, current))
        current *= (1.0 / smallest) ** (1 / max(points - 1, 1))
    fractions[-1] = 1.0
    return sorted(set(round(f, 4) for f in fractions))
