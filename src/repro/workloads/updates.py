"""Random update streams for the incremental maintenance engine.

The incremental engine (:mod:`repro.incremental`) is exercised against the
same workload families as the batch algorithms, plus this module's *update
streams*: sequences of random deltas that evolve a binary trust network —
belief revisions, trust additions/removals, priority changes and user
departures — while preserving the structural restrictions the resolvers
require (fan-in at most two, beliefs on roots only; optionally distinct
priorities for the Skeptic variant).

Streams are generated against a private working copy of the network, so
each op is valid at the moment it would be applied; replaying the returned
deltas in order through a :class:`~repro.incremental.resolver.DeltaResolver`
therefore never trips a validation error.  Generation is deterministic in
``seed``.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.core.errors import WorkloadError
from repro.core.network import TrustNetwork, User
from repro.incremental.deltas import (
    AddTrust,
    Delta,
    RemoveBelief,
    RemoveTrust,
    RemoveUser,
    SetBelief,
    SetPriority,
)

#: Default relative frequencies of the delta kinds in a generated stream.
DEFAULT_WEIGHTS = {
    "set_belief": 0.30,
    "remove_belief": 0.10,
    "add_trust": 0.20,
    "remove_trust": 0.15,
    "set_priority": 0.15,
    "remove_user": 0.10,
}


def generate_update_stream(
    network: TrustNetwork,
    n_ops: int = 20,
    seed: int = 0,
    values: Sequence[str] = ("val0", "val1", "val2"),
    weights: Optional[dict] = None,
    distinct_priorities: bool = False,
    min_users: int = 4,
) -> List[Delta]:
    """A deterministic stream of ``n_ops`` valid deltas for ``network``.

    The input network is not modified (ops are simulated on a copy).  With
    ``distinct_priorities`` the stream never creates priority ties among a
    node's parents, which keeps it valid for Algorithm 2's no-ties
    restriction; ``min_users`` stops ``remove_user`` ops from shrinking the
    network below a floor.
    """
    if n_ops < 1:
        raise WorkloadError("an update stream needs at least one operation")
    weights = dict(DEFAULT_WEIGHTS, **(weights or {}))
    kinds = sorted(weights)
    kind_weights = [weights[kind] for kind in kinds]
    rng = random.Random(seed)
    working = network.copy()
    stream: List[Delta] = []

    def users() -> List[User]:
        return sorted(working.users, key=str)

    def priority_pool(child: User, exclude_parent: Optional[User] = None) -> List[int]:
        pool = list(range(1, 16))
        if distinct_priorities:
            used = {
                edge.priority
                for edge in working.incoming(child)
                if edge.parent != exclude_parent
            }
            pool = [priority for priority in pool if priority not in used]
        return pool

    attempts = 0
    while len(stream) < n_ops and attempts < n_ops * 50:
        attempts += 1
        kind = rng.choices(kinds, weights=kind_weights)[0]
        delta: Optional[Delta] = None
        if kind == "set_belief":
            roots = [user for user in users() if not working.incoming(user)]
            if roots:
                delta = SetBelief(rng.choice(roots), rng.choice(list(values)))
                working.set_explicit_belief(delta.user, delta.value)
        elif kind == "remove_belief":
            believers = [
                user for user in users() if working.has_explicit_belief(user)
            ]
            if believers:
                delta = RemoveBelief(rng.choice(believers))
                working.remove_explicit_belief(delta.user)
        elif kind == "add_trust":
            children = [
                user
                for user in users()
                if len(working.incoming(user)) < 2
                and not working.has_explicit_belief(user)
            ]
            rng.shuffle(children)
            for child in children:
                current = {edge.parent for edge in working.incoming(child)}
                parents = [
                    parent
                    for parent in users()
                    if parent != child and parent not in current
                ]
                pool = priority_pool(child)
                if parents and pool:
                    delta = AddTrust(child, rng.choice(parents), rng.choice(pool))
                    working.add_trust(delta.child, delta.parent, delta.priority)
                    break
        elif kind == "remove_trust":
            if working.mappings:
                mapping = rng.choice(working.mappings)
                delta = RemoveTrust(mapping.child, mapping.parent)
                working.remove_trust(delta.child, delta.parent)
        elif kind == "set_priority":
            if working.mappings:
                mapping = rng.choice(working.mappings)
                parallel = sum(
                    1
                    for edge in working.incoming(mapping.child)
                    if edge.parent == mapping.parent
                )
                pool = priority_pool(mapping.child, exclude_parent=mapping.parent)
                pool = [p for p in pool if p != mapping.priority]
                # Parallel mappings between the same pair make the update
                # ambiguous (set_priority rejects them): pick another op.
                if parallel == 1 and pool:
                    delta = SetPriority(
                        mapping.child, mapping.parent, rng.choice(pool)
                    )
                    working.set_priority(delta.child, delta.parent, delta.priority)
        elif kind == "remove_user":
            candidates = users()
            if len(candidates) > min_users:
                delta = RemoveUser(rng.choice(candidates))
                working.remove_user(delta.user)
        if delta is not None:
            stream.append(delta)
    if len(stream) < n_ops:
        raise WorkloadError(
            f"could only generate {len(stream)}/{n_ops} valid operations; "
            "the network offers too few mutation targets"
        )
    return stream
