"""The quadratic worst-case network family (Appendix B.5, Figures 14 and 15).

The Resolution Algorithm is quadratic only on highly regular graphs with
"nested" strongly connected components: every SCC-flooding step must trigger
a recomputation of the SCC graph over all still-open nodes.  The paper's
Figure 14a shows one such parameterized family with ``|U| = 5 + 6k`` nodes
and ``|E| = 5 + 10k`` edges.

The exact wiring of Figure 14a is not fully recoverable from the figure, so
this module builds a family with the *same node and edge counts* and the same
behaviour: a prologue of five nodes (two belief roots feeding a three-node
cycle) followed by ``k`` blocks of six nodes forming a cycle; every edge into
a block comes from the previous block (or the prologue) and is non-preferred
(tied priorities), so Step 1 of the algorithm never fires, the blocks are
closed one per iteration, and each iteration recomputes the SCC graph of all
remaining open nodes — Θ(k) iterations of Θ(k) work, i.e. quadratic in the
network size.  This substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.errors import WorkloadError
from repro.core.network import TrustNetwork

#: Nodes contributed by each block of the parameterized family.
BLOCK_NODES = 6
#: Edges contributed by each block (6 cycle edges + 4 feeder edges).
BLOCK_EDGES = 10


def worstcase_network(k: int, values: Tuple[str, str] = ("v", "w")) -> TrustNetwork:
    """Build the nested-SCC worst-case network with parameter ``k``.

    The returned network has ``5 + 6k`` users and ``5 + 10k`` mappings,
    matching the counts stated for Figure 14a.
    """
    if k < 0:
        raise WorkloadError("the worst-case parameter k must be non-negative")
    network = TrustNetwork()

    # Prologue: two roots with explicit beliefs feed a 3-node cycle with
    # tied (non-preferred) priorities; 5 nodes, 5 edges.
    z1, z2 = "z1", "z2"
    network.set_explicit_belief(z1, values[0])
    network.set_explicit_belief(z2, values[1])
    cycle = ["x1", "x2", "x3"]
    for index, node in enumerate(cycle):
        network.add_trust(node, cycle[(index - 1) % len(cycle)], priority=1)
    network.add_trust("x1", z1, priority=1)
    network.add_trust("x2", z2, priority=1)

    previous = cycle + ["x1"]  # four attachment points for the first block
    for block in range(1, k + 1):
        nodes = [f"y{block}.{i}" for i in range(1, BLOCK_NODES + 1)]
        for index, node in enumerate(nodes):
            network.add_trust(node, nodes[(index - 1) % BLOCK_NODES], priority=1)
        # Four feeder edges from the previous layer, all non-preferred.
        for index in range(4):
            network.add_trust(nodes[index], previous[index % len(previous)], priority=1)
        previous = nodes[:4]
    return network


def expected_sizes(k: int) -> Tuple[int, int]:
    """The ``(|U|, |E|)`` the family is designed to have for parameter ``k``."""
    return 5 + BLOCK_NODES * k, 5 + BLOCK_EDGES * k


def parameter_for_size(target_size: int) -> int:
    """The block count whose network size ``|U| + |E|`` is closest to the target."""
    if target_size < 10:
        raise WorkloadError("minimum worst-case network size is 10")
    return max(0, round((target_size - 10) / (BLOCK_NODES + BLOCK_EDGES)))


def size_sweep(max_k: int, points: int = 6) -> List[int]:
    """A sweep of ``k`` values for the Figure 15 scaling experiment."""
    if max_k < 1:
        raise WorkloadError("max_k must be at least 1")
    if points < 2:
        return [max_k]
    step = max(1, max_k // points)
    ks = list(range(step, max_k + 1, step))
    if ks[-1] != max_k:
        ks.append(max_k)
    return ks
