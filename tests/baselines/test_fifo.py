"""Tests for the FIFO update-propagation baseline (Example 1.2)."""

from __future__ import annotations

import pytest

from repro.baselines.fifo import (
    FifoReconciler,
    Update,
    UpdateKind,
    order_dependence_witness,
)
from repro.core.binarize import binarize
from repro.core.errors import NetworkError
from repro.core.network import TrustNetwork
from repro.core.resolution import resolve
from repro.workloads.indus import TRUST_MAPPINGS


@pytest.fixture
def indus_network():
    return TrustNetwork(mappings=TRUST_MAPPINGS)


class TestExample12:
    def test_first_update_sequence_leaves_alice_stale(self, indus_network):
        # Time 1: Charlie inserts jar; time 4: Bob inserts cow.  Alice keeps
        # jar even though she trusts Bob more (the anomaly of Example 1.2).
        fifo = FifoReconciler(indus_network)
        fifo.apply(Update.insert("Charlie", "jar"))
        assert fifo.snapshot() == {"Charlie": "jar", "Alice": "jar", "Bob": "jar"}
        fifo.apply(Update.insert("Bob", "cow"))
        snapshot = fifo.snapshot()
        assert snapshot["Alice"] == "jar"
        assert snapshot["Bob"] == "cow"

    def test_reverse_order_gives_alice_cow(self, indus_network):
        fifo = FifoReconciler(indus_network)
        fifo.apply(Update.insert("Bob", "cow"))
        fifo.apply(Update.insert("Charlie", "jar"))
        assert fifo.snapshot()["Alice"] == "cow"

    def test_order_dependence_witness_found(self, indus_network):
        updates = [Update.insert("Charlie", "jar"), Update.insert("Bob", "cow")]
        witness = order_dependence_witness(indus_network, updates, focus_user="Alice")
        assert witness is not None
        first, second = witness
        assert set(first) == set(second)

    def test_update_of_propagated_value_is_lost(self, indus_network):
        # Second table of Example 1.2: Charlie updates jar -> cow, but Alice
        # and Bob keep the stale jar.
        fifo = FifoReconciler(indus_network)
        fifo.apply(Update.insert("Charlie", "jar"))
        fifo.apply(Update.change("Charlie", "cow"))
        snapshot = fifo.snapshot()
        assert snapshot["Charlie"] == "cow"
        assert snapshot["Alice"] == "jar"
        assert snapshot["Bob"] == "jar"

    def test_stable_solution_semantics_is_order_invariant(self, indus_network):
        # The contrast: re-running resolution gives the same snapshot for any
        # insertion order and reflects the revocation.
        network = indus_network.copy()
        network.set_explicit_belief("Charlie", "cow")
        result = resolve(binarize(network).btn)
        assert result.certain_value("Alice") == "cow"
        assert result.certain_value("Bob") == "cow"


class TestReconcilerMechanics:
    def test_revoke_clears_value(self, indus_network):
        fifo = FifoReconciler(indus_network)
        fifo.apply(Update.insert("Charlie", "jar"))
        fifo.apply(Update.revoke("Charlie"))
        assert fifo.state.value_of("Charlie") is None
        # ... but the previously propagated copies remain (the baseline flaw).
        assert fifo.state.value_of("Alice") == "jar"

    def test_insert_requires_value(self, indus_network):
        fifo = FifoReconciler(indus_network)
        with pytest.raises(NetworkError):
            fifo.apply(Update("Charlie", UpdateKind.INSERT))

    def test_per_object_keys_are_independent(self, indus_network):
        fifo = FifoReconciler(indus_network)
        fifo.apply(Update.insert("Charlie", "jar", key="glyph1"))
        fifo.apply(Update.insert("Bob", "fish", key="glyph2"))
        assert fifo.snapshot("glyph1")["Alice"] == "jar"
        assert fifo.snapshot("glyph2")["Alice"] == "fish"

    def test_apply_all(self, indus_network):
        fifo = FifoReconciler(indus_network)
        fifo.apply_all([Update.insert("Bob", "cow"), Update.insert("Charlie", "jar")])
        assert fifo.snapshot()["Alice"] == "cow"

    def test_no_order_dependence_without_conflict(self, indus_network):
        updates = [Update.insert("Charlie", "jar"), Update.insert("Bob", "jar")]
        assert (
            order_dependence_witness(indus_network, updates, focus_user="Alice") is None
        )
