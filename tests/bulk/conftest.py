"""Shared helpers for the bulk test suite."""

from __future__ import annotations

import pytest


@pytest.fixture
def serialized_relation():
    """The byte-level equivalence oracle: the full POSS relation of a store
    (single or sharded) as one canonical byte string.

    Every equivalence test in this package — grouped vs. ungrouped plans,
    DAG topological replay, sharded scatter/gather, PostgreSQL vs. sqlite —
    compares relations through this single serialization.
    """

    def serialize(store) -> bytes:
        rows = sorted(store.possible_table())
        return "\n".join(
            f"{row.user}|{row.key}|{row.value}" for row in rows
        ).encode()

    return serialize
