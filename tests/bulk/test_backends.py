"""Tests for the pluggable SQL backends and index strategies."""

from __future__ import annotations

import sqlite3

import pytest

from repro.bulk.backends import (
    BASELINE_INDEXES,
    COVERING_INDEX,
    DEFAULT_MAX_BIND_PARAMS,
    INDEX_STRATEGIES,
    NO_INDEXES,
    DbApiBackend,
    SqliteFileBackend,
    SqliteMemoryBackend,
    probe_max_bind_params,
    resolve_index_strategy,
    sqlite_backend,
    sqlite_max_bind_params,
)
from repro.bulk.store import PossStore
from repro.core.errors import (
    BackendError,
    BackendUnavailable,
    BulkProcessingError,
    TransientBackendError,
)


class TestIndexStrategies:
    def test_registry_contains_the_shipped_strategies(self):
        assert set(INDEX_STRATEGIES) == {"baseline", "covering", "none"}

    def test_resolve_by_name_object_and_default(self):
        assert resolve_index_strategy("covering") is COVERING_INDEX
        assert resolve_index_strategy(NO_INDEXES) is NO_INDEXES
        assert resolve_index_strategy(None) is BASELINE_INDEXES

    def test_unknown_strategy_rejected(self):
        with pytest.raises(BulkProcessingError):
            resolve_index_strategy("btree-of-dreams")

    @pytest.mark.parametrize("name", sorted(INDEX_STRATEGIES))
    def test_store_creates_the_declared_indexes(self, name):
        with PossStore(index_strategy=name) as store:
            cursor = store._connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'index' "
                "AND name LIKE 'POSS%'"
            )
            created = {row[0] for row in cursor.fetchall()}
            assert created == set(INDEX_STRATEGIES[name].index_names)
            assert store.index_strategy.name == name

    def test_reopening_with_a_different_strategy_drops_stale_indexes(self, tmp_path):
        path = str(tmp_path / "poss.db")
        with PossStore(path=path, index_strategy="baseline"):
            pass
        with PossStore(path=path, index_strategy="none") as store:
            cursor = store._connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'index' "
                "AND name LIKE 'POSS%'"
            )
            assert cursor.fetchall() == []
        with PossStore(path=path, index_strategy="covering") as store:
            cursor = store._connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'index' "
                "AND name LIKE 'POSS%'"
            )
            assert {row[0] for row in cursor.fetchall()} == {"POSS_COVER"}

    @pytest.mark.parametrize("name", sorted(INDEX_STRATEGIES))
    def test_bulk_statements_work_under_every_strategy(self, name):
        with PossStore(index_strategy=name) as store:
            store.insert_explicit_beliefs([("z", "k1", "v"), ("z", "k2", "w")])
            store.copy_to_children("z", ["x", "y"])
            assert store.possible_values("x", "k1") == frozenset({"v"})
            assert store.possible_values("y", "k2") == frozenset({"w"})


class TestSqliteBackends:
    def test_memory_backend_is_the_default(self):
        with PossStore() as store:
            assert store.backend_name == "sqlite-memory"

    def test_path_dispatch(self, tmp_path):
        assert isinstance(sqlite_backend(":memory:"), SqliteMemoryBackend)
        assert isinstance(sqlite_backend(str(tmp_path / "poss.db")), SqliteFileBackend)

    def test_file_backend_rejects_memory_sentinel(self):
        with pytest.raises(BulkProcessingError):
            SqliteFileBackend(":memory:")
        with pytest.raises(BulkProcessingError):
            SqliteFileBackend("")

    def test_file_backend_persists_rows_across_stores(self, tmp_path):
        path = str(tmp_path / "poss.db")
        with PossStore(path=path) as store:
            assert store.backend_name == "sqlite-file"
            store.insert_explicit_beliefs([("a", "k1", "v")])
        with PossStore(backend=SqliteFileBackend(path)) as reopened:
            assert reopened.possible_values("a", "k1") == frozenset({"v"})


class TestDbApiBackend:
    def test_qmark_render_is_identity(self):
        backend = DbApiBackend(lambda: sqlite3.connect(":memory:"))
        sql = "SELECT V FROM POSS WHERE X = ? AND K = ?"
        assert backend.render(sql) == sql

    def test_format_render(self):
        backend = DbApiBackend(
            lambda: sqlite3.connect(":memory:"), paramstyle="format"
        )
        assert (
            backend.render("INSERT INTO POSS VALUES (?, ?, ?)")
            == "INSERT INTO POSS VALUES (%s, %s, %s)"
        )

    def test_numeric_render(self):
        backend = DbApiBackend(
            lambda: sqlite3.connect(":memory:"), paramstyle="numeric"
        )
        assert (
            backend.render("SELECT 1 WHERE X = ? AND K = ?")
            == "SELECT 1 WHERE X = :1 AND K = :2"
        )

    def test_named_paramstyles_rejected(self):
        with pytest.raises(BulkProcessingError):
            DbApiBackend(lambda: None, paramstyle="named")

    def test_default_dbapi_backend_is_thread_eligible(self):
        backend = DbApiBackend(lambda: None)
        assert backend.supports_concurrent_replay
        pinned = DbApiBackend(lambda: None, supports_concurrent_replay=False)
        assert not pinned.supports_concurrent_replay

    def test_store_runs_on_a_generic_dbapi_connection(self):
        # sqlite3 through the *generic* adapter, not the sqlite backend:
        # exercises the extension-point path end to end.
        backend = DbApiBackend(
            lambda: sqlite3.connect(":memory:"), name="generic-sqlite"
        )
        with PossStore(backend=backend) as store:
            assert store.backend_name == "generic-sqlite"
            store.insert_explicit_beliefs([("z", "k1", "v")])
            with store.transaction():
                store.copy_to_children("z", ["x", "y"])
            assert store.possible_values("y", "k1") == frozenset({"v"})
            assert store.transactions >= 2  # schema/load + run


class FakeCursor:
    """Minimal DB-API cursor that records every rendered statement."""

    rowcount = 0

    def __init__(self, connection: "FakeConnection") -> None:
        self._connection = connection

    def execute(self, sql, parameters=()):
        self._connection.statements.append((sql, tuple(parameters)))
        return self

    def executemany(self, sql, rows):
        for row in rows:
            self.execute(sql, row)
        return self

    def fetchall(self):
        return []

    def fetchone(self):
        return (0,)


class FakeConnection:
    """Minimal DB-API connection; ``autocommit`` mimics drivers that do not
    open an implicit transaction (every statement commits on its own)."""

    def __init__(self, autocommit: bool = False) -> None:
        self.autocommit = autocommit
        self.statements = []
        self.commits = 0
        self.rollbacks = 0
        self.closed = False

    def cursor(self) -> FakeCursor:
        return FakeCursor(self)

    def commit(self) -> None:
        self.commits += 1

    def rollback(self) -> None:
        self.rollbacks += 1

    def close(self) -> None:
        self.closed = True


class TestDbApiRenderingThroughTheStore:
    """The store's SQL as actually rendered for each supported paramstyle."""

    def _store_and_connection(self, paramstyle):
        connection = FakeConnection()
        backend = DbApiBackend(
            lambda: connection, paramstyle=paramstyle, name=f"fake-{paramstyle}"
        )
        return PossStore(backend=backend), connection

    def _bulk_sql(self, connection):
        return [
            sql
            for sql, _params in connection.statements
            if sql.startswith("INSERT INTO POSS")
        ]

    def test_qmark_statements_pass_through_unchanged(self):
        store, connection = self._store_and_connection("qmark")
        store.copy_from_parent("child", "parent")
        (sql,) = self._bulk_sql(connection)
        assert sql == (
            "INSERT INTO POSS (X, K, V) "
            "SELECT ?, t.K, t.V FROM POSS t WHERE t.X = ?"
        )

    def test_format_statements_render_percent_s(self):
        store, connection = self._store_and_connection("format")
        store.copy_to_children("parent", ["c1", "c2"])
        (sql,) = self._bulk_sql(connection)
        assert "?" not in sql
        assert sql.count("%s") == 3  # two child VALUES rows + parent probe
        assert "(VALUES (%s),(%s))" in sql

    def test_numeric_statements_render_positional_numbers(self):
        store, connection = self._store_and_connection("numeric")
        store.flood_component(["m1", "m2"], ["p1"])
        (sql,) = self._bulk_sql(connection)
        assert "?" not in sql
        assert "(VALUES (:1),(:2))" in sql
        assert "WHERE s.X IN (:3)" in sql

    def test_parameters_reach_the_cursor_in_textual_order(self):
        store, connection = self._store_and_connection("numeric")
        store.flood_component_skeptic(
            ["m"], ["p"], {"m": ["bad"]}
        )
        inserts = [
            (sql, params)
            for sql, params in connection.statements
            if sql.startswith("INSERT INTO POSS")
        ]
        assert len(inserts) == 2  # filtered flood + ⊥ statement
        _, bottom_params = inserts[1]
        # ⊥ scalar precedes the member list, matching textual placeholder order.
        assert bottom_params[0] == "__BOTTOM__"
        assert bottom_params[1:] == ("m", "p", "bad")

    def test_schema_statements_are_rendered_too(self):
        _store, connection = self._store_and_connection("format")
        assert any(
            sql.startswith("CREATE TABLE") for sql, _ in connection.statements
        )

    def _delta_sql(self, connection):
        return [
            (sql, params)
            for sql, params in connection.statements
            if sql.startswith(("DELETE FROM POSS", "INSERT INTO POSS (X, K, V) VALUES"))
        ]

    def test_numeric_delta_delete_renders_in_list_and_key(self):
        """The incremental engine's delta DELETE — ``X IN (…) AND K = ?`` —
        through the numeric paramstyle: positions cover the IN list first,
        the key last, and the parameters arrive in that order."""
        store, connection = self._store_and_connection("numeric")
        store.delete_user_rows(["x1", "x2", "x3"], key="k7")
        ((sql, params),) = self._delta_sql(connection)
        assert "?" not in sql
        assert "WHERE X IN (:1,:2,:3)" in sql
        assert sql.endswith("AND K = :4")
        assert params == ("x1", "x2", "x3", "k7")
        assert store.delta_statements == 1

    def test_numeric_delta_delete_without_key_omits_the_key_clause(self):
        store, connection = self._store_and_connection("numeric")
        store.delete_user_rows(["a", "b"])
        ((sql, params),) = self._delta_sql(connection)
        assert sql == "DELETE FROM POSS WHERE X IN (:1,:2)"
        assert params == ("a", "b")

    def test_numeric_delta_delete_chunks_restart_numbering(self):
        """Chunked deletes (bound-variable limits) must re-render the
        placeholders per chunk — positions restart at :1 each time."""
        store, connection = self._store_and_connection("numeric")
        users = [f"x{i}" for i in range(501)]
        store.delete_user_rows(users, key="k0")
        statements = self._delta_sql(connection)
        assert len(statements) == 2  # 500 + 1
        first_sql, first_params = statements[0]
        second_sql, second_params = statements[1]
        assert first_sql.startswith("DELETE FROM POSS WHERE X IN (:1,")
        assert f":{500}" in first_sql and first_sql.endswith("AND K = :501")
        assert second_sql == "DELETE FROM POSS WHERE X IN (:1) AND K = :2"
        assert first_params == (*users[:500], "k0")
        assert second_params == ("x500", "k0")
        assert store.delta_statements == 2

    def test_numeric_delta_insert_renders_row_placeholders(self):
        store, connection = self._store_and_connection("numeric")
        store.insert_rows([("u", "k0", "v"), ("w", "k1", "z")])
        inserts = self._delta_sql(connection)
        assert len(inserts) == 2  # executemany records one call per row
        for sql, params in inserts:
            assert sql == "INSERT INTO POSS (X, K, V) VALUES (:1, :2, :3)"
            assert len(params) == 3
        assert store.delta_statements == 1  # one executemany batch

    def test_transaction_begins_explicitly_and_rolls_back_on_autocommit(self):
        """The explicit-BEGIN path: on a connection without an implicit
        transaction, transaction() must issue BEGIN so rollback() has a
        transaction to undo."""
        connection = FakeConnection(autocommit=True)
        backend = DbApiBackend(lambda: connection, paramstyle="format")
        store = PossStore(backend=backend)
        commits_before = connection.commits
        with pytest.raises(RuntimeError):
            with store.transaction():
                store.copy_from_parent("b", "a")
                raise RuntimeError("mid-run failure")
        assert ("BEGIN", ()) in connection.statements
        assert connection.rollbacks == 1
        assert connection.commits == commits_before  # nothing committed mid-run
        # And the commit path: BEGIN …statements… commit().
        with store.transaction():
            store.copy_from_parent("c", "a")
        assert connection.commits == commits_before + 1


class TestErrorClassification:
    """The single classification funnel: hook first, then generic rules."""

    def test_classifier_hook_takes_precedence(self):
        class OperationalError(Exception):
            """psycopg-style driver error (name-heuristic: transient)."""

        def classifier(error):
            if "server closed" in str(error):
                return BackendUnavailable
            return None

        backend = DbApiBackend(lambda: FakeConnection(), error_classifier=classifier)
        # The hook overrides the OperationalError name heuristic...
        assert (
            backend.classify_error(OperationalError("server closed the connection"))
            is BackendUnavailable
        )
        # ...and falls through to it when it declines.
        assert (
            backend.classify_error(OperationalError("deadlock detected"))
            is TransientBackendError
        )

    def test_mro_name_heuristics(self):
        class InterfaceError(Exception):
            pass

        class DatabaseError(Exception):
            pass

        backend = DbApiBackend(lambda: FakeConnection())
        assert backend.classify_error(InterfaceError("gone")) is BackendUnavailable
        assert backend.classify_error(DatabaseError("broken")) is BackendError
        assert backend.classify_error(ValueError("not a driver error")) is None

    def test_sqlite_over_dbapi_is_not_name_heuristic_transient(self):
        """sqlite raises OperationalError for plain SQL mistakes ("no such
        table"); the message-based sqlite rules must win over the
        OperationalError name heuristic, or programming errors would
        retry."""
        backend = DbApiBackend(lambda: FakeConnection())
        assert (
            backend.classify_error(sqlite3.OperationalError("no such table: NOPE"))
            is BackendError
        )
        assert (
            backend.classify_error(sqlite3.OperationalError("database is locked"))
            is TransientBackendError
        )

    def test_already_classified_errors_pass_through(self):
        backend = DbApiBackend(lambda: FakeConnection())
        assert (
            backend.classify_error(TransientBackendError("x"))
            is TransientBackendError
        )

    def test_raw_driver_errors_surface_classified_from_the_store(self):
        """End to end: a raw driver exception escaping a statement reaches
        the caller as a classified ``core.errors`` type, never raw."""
        with PossStore() as store:
            with pytest.raises(BackendError):
                store._execute("SELECT * FROM NO_SUCH_TABLE")


class RecordingDeadConnection(FakeConnection):
    """A fake connection that can die in place: once ``dead`` is set, every
    cursor operation raises an InterfaceError-named driver exception (the
    name heuristics classify it unavailable)."""

    class InterfaceError(Exception):
        pass

    def __init__(self) -> None:
        super().__init__()
        self.dead = False

    def cursor(self):
        if self.dead:
            raise self.InterfaceError("connection already closed")
        return _DeadableCursor(self)


class _DeadableCursor(FakeCursor):
    def execute(self, sql, parameters=()):
        if self._connection.dead:
            raise RecordingDeadConnection.InterfaceError(
                "connection already closed"
            )
        return super().execute(sql, parameters)


class TestRunStartHealthCheck:
    """Satellite: the executor health-checks (and reconnects once) at run
    start, so a died-while-idle connection heals before any statement."""

    def _resolver(self, connections):
        def factory():
            connection = RecordingDeadConnection()
            connections.append(connection)
            return connection

        backend = DbApiBackend(factory, name="fake-health")
        from repro.bulk.executor import BulkResolver
        from repro.workloads.bulkload import (
            BELIEF_USERS,
            figure19_network,
            generate_objects,
        )

        resolver = BulkResolver(
            figure19_network(),
            store=PossStore(backend=backend),
            explicit_users=BELIEF_USERS,
        )
        resolver.load_beliefs(generate_objects(2, seed=1))
        return resolver

    def test_dead_connection_reconnects_once_at_run_start(self):
        connections = []
        resolver = self._resolver(connections)
        assert len(connections) == 1
        connections[0].dead = True  # dies while idle, before the run
        resolver.run()
        # One reconnect: a second factory connection, schema re-run on it,
        # and the whole plan executed there.
        assert len(connections) == 2
        assert resolver.store.reconnects == 1
        replacement_sql = [sql for sql, _params in connections[1].statements]
        assert any(sql.startswith("CREATE TABLE") for sql in replacement_sql)
        assert any(sql.startswith("INSERT INTO POSS") for sql in replacement_sql)

    def test_still_dead_after_reconnect_raises_unavailable(self):
        connections = []
        resolver = self._resolver(connections)
        for connection in connections:
            connection.dead = True
        # Every future factory connection is dead on arrival too.
        original_cursor = RecordingDeadConnection.cursor

        def dead_cursor(self):
            raise RecordingDeadConnection.InterfaceError("no route to host")

        RecordingDeadConnection.cursor = dead_cursor
        try:
            with pytest.raises(BackendUnavailable):
                resolver.run()
        finally:
            RecordingDeadConnection.cursor = original_cursor
        assert resolver.store.reconnects <= 1


class TestBindParameterProbe:
    """The adaptive bind-capacity probe behind RegionLimits sizing.

    sqlite raised SQLITE_MAX_VARIABLE_NUMBER from 999 to 32766 in 3.32;
    modern drivers also expose the live limit via Connection.getlimit.  The
    probe must believe the engine, not the historic constant — and fall
    back to the conservative 999 floor when nothing can be learned.
    """

    class _Fake:
        """A DB-API-ish connection with configurable limit surfaces."""

        def __init__(self, getlimit=None, compile_options=()):
            self._getlimit = getlimit
            self._compile_options = tuple(compile_options)

        def getlimit(self, _category):
            if self._getlimit is None:
                raise AttributeError("getlimit unsupported")
            return self._getlimit

        def execute(self, sql):
            assert "compile_options" in sql
            return [(option,) for option in self._compile_options]

    def test_getlimit_wins_when_available(self):
        fake = self._Fake(getlimit=250_000)
        assert probe_max_bind_params(fake) == 250_000

    def test_pragma_compile_options_used_when_getlimit_missing(self):
        fake = self._Fake(compile_options=("MAX_VARIABLE_NUMBER=32766",))
        assert probe_max_bind_params(fake) == 32_766

    def test_old_engine_keeps_the_999_floor(self):
        fake = self._Fake(compile_options=("SOME_OTHER_OPTION",))
        assert (
            probe_max_bind_params(fake, version_info=(3, 8, 3))
            == DEFAULT_MAX_BIND_PARAMS
        )

    def test_modern_version_implies_the_32766_default(self):
        fake = self._Fake()
        assert probe_max_bind_params(fake, version_info=(3, 32, 0)) == 32_766
        assert probe_max_bind_params(fake, version_info=(3, 45, 1)) == 32_766

    def test_probe_never_reports_below_the_floor(self):
        fake = self._Fake(getlimit=100)
        assert (
            probe_max_bind_params(fake, version_info=(3, 8, 3))
            >= DEFAULT_MAX_BIND_PARAMS
        )

    def test_sqlite_backends_expose_the_probed_capacity(self, tmp_path):
        expected = sqlite_max_bind_params()
        assert expected >= DEFAULT_MAX_BIND_PARAMS
        assert SqliteMemoryBackend().max_bind_params == expected
        assert (
            SqliteFileBackend(str(tmp_path / "probe.db")).max_bind_params
            == expected
        )

    def test_dbapi_backend_defaults_to_the_floor(self):
        backend = DbApiBackend(lambda: sqlite3.connect(":memory:"))
        assert backend.max_bind_params == DEFAULT_MAX_BIND_PARAMS

    def test_dbapi_backend_accepts_an_explicit_capacity(self):
        backend = DbApiBackend(
            lambda: sqlite3.connect(":memory:"), max_bind_params=65_535
        )
        assert backend.max_bind_params == 65_535

    def test_dbapi_backend_rejects_a_nonpositive_capacity(self):
        with pytest.raises(BulkProcessingError):
            DbApiBackend(lambda: sqlite3.connect(":memory:"), max_bind_params=0)

    def test_store_and_sharded_store_surface_the_backend_capacity(self):
        from repro.bulk.store import ShardedPossStore

        store = PossStore()
        assert store.max_bind_params == sqlite_max_bind_params()
        mixed = ShardedPossStore(
            2,
            backends=[
                SqliteMemoryBackend(),
                DbApiBackend(
                    lambda: sqlite3.connect(":memory:"), max_bind_params=1_000
                ),
            ],
        )
        # The sharded capacity is the weakest shard's: every region
        # statement must execute on every shard.
        assert mixed.max_bind_params == 1_000
        mixed.close()
        store.close()
