"""Differential tests for compiled SQL plan execution (bulk/compile.py).

The acceptance property of the compiled scheduler: partitioning a plan into
regions — recursive-CTE copy regions, window-function flood stages, replay
fallbacks — and executing each region as one pushed-down SQL statement must
produce a relation byte-identical to the sequential plan-order replay, on
hundreds of randomized networks, for shard counts {1, 2, 4} and for
in-memory sqlite, sqlite-file and DB-API backends.  A dialect gap never
changes the relation, only how many statements it took.
"""

from __future__ import annotations

import random
import sqlite3

import pytest

from repro.bulk.backends import DbApiBackend, SqliteFileBackend
from repro.bulk.compile import (
    MAX_COPY_EDGES,
    MAX_FLOOD_PAIRS,
    CompiledPlan,
    CompiledRegion,
    compile_plan,
    compile_steps,
)
from repro.bulk.executor import BulkResolver, ConcurrentBulkResolver, _replay_step
from repro.bulk.planner import (
    CopyStep,
    FloodStep,
    GroupedCopyStep,
    plan_resolution,
)
from repro.bulk.sql import SqlDialect, sqlite_dialect
from repro.bulk.store import PossStore, ShardedPossStore
from repro.core.network import TrustNetwork
from repro.workloads.bulkload import (
    BELIEF_USERS,
    chain_network,
    figure19_network,
    generate_objects,
)


def _random_network(rng, max_users: int = 9):
    """A random trust network plus the users carrying explicit beliefs."""
    n = rng.randint(4, max_users)
    users = [f"u{i}" for i in range(n)]
    tn = TrustNetwork()
    for user in users:
        tn.add_user(user)
    n_explicit = rng.randint(1, 2)
    explicit = users[:n_explicit]
    for child in users[n_explicit:]:
        parents = rng.sample([u for u in users if u != child], rng.randint(1, 2))
        priorities = (
            rng.sample([1, 2], len(parents))
            if rng.random() < 0.7
            else [1] * len(parents)
        )
        for parent, priority in zip(parents, priorities):
            tn.add_trust(child, parent, priority=priority)
    return tn, explicit


def _random_rows(rng, explicit, n_objects):
    rows = []
    for index in range(n_objects):
        key = f"k{index}"
        for user in explicit:
            rows.append((user, key, rng.choice(["v1", "v2", "v3"])))
    return rows


def _sequential_reference(plan, rows, serialized_relation):
    """The relation produced by a plain plan-order sequential replay."""
    store = PossStore()
    store.insert_explicit_beliefs(rows)
    with store.transaction():
        for step in plan.steps:
            _replay_step(store, step)
    expected = serialized_relation(store)
    store.close()
    return expected


def _file_backends(tmp_path, tag, count):
    return [
        SqliteFileBackend(str(tmp_path / f"{tag}-shard{i}.db")) for i in range(count)
    ]


def _dbapi_backends(tmp_path, tag, count, dialect="sqlite"):
    def factory(path):
        return lambda: sqlite3.connect(path, check_same_thread=False)

    return [
        DbApiBackend(
            factory(str(tmp_path / f"{tag}-dbshard{i}.db")),
            name="dbapi-sqlite",
            supports_concurrent_statements=sqlite3.threadsafety == 3,
            dialect=dialect,
        )
        for i in range(count)
    ]


class TestCompiledEquivalenceProperty:
    """Acceptance property: the compiled scheduler is byte-identical to
    sequential replay on >= 200 random networks, shard counts {1, 2, 4},
    through in-memory sqlite, sqlite-file and DB-API backends."""

    NETWORKS = 200
    SHARD_COUNTS = (1, 2, 4)
    BACKEND_KINDS = ("memory", "file", "dbapi")

    def test_compiled_execution_is_byte_identical_over_random_networks(
        self, tmp_path, serialized_relation
    ):
        rng = random.Random(20100807)
        flood_regions = 0
        for trial in range(self.NETWORKS):
            network, explicit = _random_network(rng)
            rows = _random_rows(rng, explicit, n_objects=rng.randint(2, 5))
            shards = self.SHARD_COUNTS[trial % len(self.SHARD_COUNTS)]
            kind = self.BACKEND_KINDS[(trial // 3) % len(self.BACKEND_KINDS)]
            if kind == "memory":
                store = ShardedPossStore(shards)
            elif kind == "file":
                store = ShardedPossStore(
                    shards, backends=_file_backends(tmp_path, f"t{trial}", shards)
                )
            else:
                store = ShardedPossStore(
                    shards, backends=_dbapi_backends(tmp_path, f"t{trial}", shards)
                )
            resolver = ConcurrentBulkResolver(
                network,
                store=store,
                explicit_users=explicit,
                scheduler="compiled",
            )
            expected = _sequential_reference(
                resolver.plan, rows, serialized_relation
            )
            compiled = resolver.compiled
            flood_regions += sum(
                1 for region in compiled.regions if region.kind == "flood"
            )
            resolver.load_beliefs(rows)
            report = resolver.run()
            assert serialized_relation(store) == expected, (
                f"trial {trial}: compiled execution diverged "
                f"(shards={shards}, backend={kind})"
            )
            assert report.scheduler == "compiled"
            # Every region compiles on sqlite >= 3.25, on every shard ...
            assert report.regions_compiled == compiled.region_count * shards
            # ... so the statement count is the compiled one, not the replay's.
            assert report.statements == compiled.statement_count() * shards
            assert report.statements_saved == (
                compiled.replay_statement_count() - compiled.statement_count()
            ) * shards
            store.close()
        # The generator must actually exercise the window-function path.
        assert flood_regions > 20

    def test_single_store_compiled_is_byte_identical(
        self, tmp_path, serialized_relation
    ):
        """One sqlite-file / DB-API store through BulkResolver directly."""
        rng = random.Random(8742)
        for trial in range(40):
            network, explicit = _random_network(rng)
            rows = _random_rows(rng, explicit, n_objects=3)
            if trial % 2:
                backend = SqliteFileBackend(str(tmp_path / f"c{trial}.db"))
            else:
                path = str(tmp_path / f"c{trial}-db.db")
                backend = DbApiBackend(
                    lambda path=path: sqlite3.connect(path, check_same_thread=False),
                    name="dbapi-sqlite",
                    dialect="sqlite",
                )
            store = PossStore(backend=backend)
            resolver = BulkResolver(
                network, store=store, explicit_users=explicit, scheduler="compiled"
            )
            expected = _sequential_reference(
                resolver.plan, rows, serialized_relation
            )
            resolver.load_beliefs(rows)
            report = resolver.run()
            assert serialized_relation(store) == expected, f"trial {trial}"
            assert report.scheduler == "compiled"
            assert report.transactions == 1
            assert report.regions_compiled == resolver.compiled.region_count
            store.close()


class TestStatementCollapse:
    """The headline win: long acyclic runs become one recursive CTE."""

    def test_400_chain_collapses_to_one_statement(self, serialized_relation):
        network = chain_network(400)
        rows = generate_objects(5, seed=21)
        reference = BulkResolver(network, explicit_users=BELIEF_USERS)
        assert reference.plan.statement_count() >= 400
        reference.load_beliefs(rows)
        reference.run()
        expected = serialized_relation(reference.store)
        reference.store.close()

        resolver = BulkResolver(
            network, explicit_users=BELIEF_USERS, scheduler="compiled"
        )
        resolver.load_beliefs(rows)
        report = resolver.run()
        assert serialized_relation(resolver.store) == expected
        # The entire acyclic chain is one recursive-CTE region.
        assert report.statements <= 5
        assert report.statements_saved >= 395
        assert report.regions_compiled >= 1
        resolver.store.close()

    def test_figure19_compiles_below_replay(self, serialized_relation):
        network = figure19_network()
        rows = generate_objects(10, seed=6)
        reference = BulkResolver(network, explicit_users=BELIEF_USERS)
        reference.load_beliefs(rows)
        reference.run()
        expected = serialized_relation(reference.store)
        replay_statements = reference.plan.statement_count()
        reference.store.close()

        resolver = BulkResolver(
            network, explicit_users=BELIEF_USERS, scheduler="compiled"
        )
        resolver.load_beliefs(rows)
        report = resolver.run()
        assert serialized_relation(resolver.store) == expected
        assert report.statements < replay_statements
        resolver.store.close()


class TestRegionBoundaries:
    """Units for the partitioning rules of compile_steps/compile_plan."""

    def test_all_acyclic_plan_is_one_copy_region(self):
        network = chain_network(50)
        plan = plan_resolution(network, explicit_users=BELIEF_USERS)
        compiled = compile_plan(plan)
        assert isinstance(compiled, CompiledPlan)
        assert [region.kind for region in compiled.regions] == ["copy"]
        assert compiled.statement_count() == 1
        assert compiled.replay_statement_count() == plan.statement_count()

    def test_single_scc_plan_is_one_flood_region(self):
        tn = TrustNetwork()
        tn.add_trust("p", "q", priority=1)
        tn.add_trust("q", "p", priority=1)
        tn.add_trust("p", "root", priority=1)
        tn.set_explicit_belief("root", "v")
        plan = plan_resolution(tn)
        flood_steps = [s for s in plan.steps if isinstance(s, FloodStep)]
        assert flood_steps, "plan shape changed: expected an SCC flood"
        compiled = compile_plan(plan)
        kinds = [region.kind for region in compiled.regions]
        assert "flood" in kinds
        for region in compiled.regions:
            if region.kind == "flood":
                assert region.pairs  # member × parent pairs, flattened later
                assert all(isinstance(s, FloodStep) for s in region.steps)

    def test_grouped_copies_flush_at_the_edge_cap(self):
        big = MAX_COPY_EDGES - 180  # two of these cannot share a region
        first = GroupedCopyStep(
            parent="r", children=tuple(f"a{i}" for i in range(big))
        )
        second = GroupedCopyStep(
            parent="r", children=tuple(f"b{i}" for i in range(big))
        )
        regions = compile_steps([first, second])
        assert [region.kind for region in regions] == ["copy", "copy"]
        assert len(regions[0].edges) == big
        assert len(regions[1].edges) == big

    def test_oversized_grouped_copy_becomes_a_replay_region(self):
        step = GroupedCopyStep(
            parent="r",
            children=tuple(f"c{i}" for i in range(MAX_COPY_EDGES + 20)),
        )
        regions = compile_steps([step])
        assert [region.kind for region in regions] == ["replay"]
        # Replay of one grouped copy is still one statement: nothing lost.
        assert regions[0].statement_count() == 1
        assert regions[0].replay_statement_count() == 1

    def test_copy_straddling_a_region_edge_stays_correct(self, serialized_relation):
        """A copy chain interleaved with a flood splits into copy / flood /
        copy regions whose concatenation replays the exact plan order."""
        tn = TrustNetwork()
        tn.add_trust("b", "a", priority=1)
        tn.add_trust("p", "b", priority=1)
        tn.add_trust("p", "q", priority=1)
        tn.add_trust("q", "p", priority=1)
        tn.add_trust("z", "p", priority=1)
        tn.set_explicit_belief("a", "v")
        plan = plan_resolution(tn)
        compiled = compile_plan(plan)
        kinds = [region.kind for region in compiled.regions]
        assert kinds.count("flood") >= 1
        assert kinds.count("copy") >= 2  # before and after the SCC
        # Region steps concatenate back to the plan's step sequence.
        flattened = [s for region in compiled.regions for s in region.steps]
        assert flattened == list(plan.steps)
        rows = [("a", "k0", "v1"), ("a", "k1", "v2")]
        expected = _sequential_reference(plan, rows, serialized_relation)
        store = PossStore()
        resolver = BulkResolver(
            tn, store=store, explicit_users=["a"], scheduler="compiled"
        )
        resolver.load_beliefs(rows)
        resolver.run()
        assert serialized_relation(store) == expected
        store.close()

    def test_blocked_flood_is_a_replay_region(self):
        blocked = FloodStep(
            members=("p",), parents=("source",), blocked=(("p", ("v1",)),)
        )
        regions = compile_steps([blocked])
        assert [region.kind for region in regions] == ["replay"]

    def test_journal_markers_are_strictly_increasing(self):
        network = figure19_network()
        plan = plan_resolution(network, explicit_users=BELIEF_USERS)
        compiled = compile_plan(plan)
        markers = compiled.journal_markers()
        assert len(markers) == compiled.region_count
        assert list(markers) == sorted(set(markers))
        assert markers[-1] == len(plan.steps) - 1

    def test_flood_pair_cap_spills_to_replay(self):
        members = tuple(f"m{i}" for i in range(40))
        parents = tuple(f"p{i}" for i in range(MAX_FLOOD_PAIRS // 40 + 1))
        oversized = FloodStep(members=members, parents=parents)
        regions = compile_steps([oversized])
        assert [region.kind for region in regions] == ["replay"]


class TestDialectFallback:
    """Capability gaps degrade to replay, never to a different relation."""

    def test_dialectless_dbapi_backend_falls_back_to_replay(
        self, tmp_path, serialized_relation
    ):
        network = figure19_network()
        rows = generate_objects(8, seed=9)
        path = str(tmp_path / "nodialect.db")
        backend = DbApiBackend(
            lambda: sqlite3.connect(path, check_same_thread=False),
            name="dbapi-unknown",
        )
        assert backend.compiled_dialect is None
        assert not backend.supports_compiled_regions
        store = PossStore(backend=backend)
        resolver = BulkResolver(
            network, store=store, explicit_users=BELIEF_USERS, scheduler="compiled"
        )
        expected = _sequential_reference(resolver.plan, rows, serialized_relation)
        resolver.load_beliefs(rows)
        report = resolver.run()
        assert serialized_relation(store) == expected
        assert report.scheduler == "compiled"
        assert report.regions_compiled == 0  # every region replayed
        assert report.statements == resolver.plan.statement_count()
        assert report.statements_saved == 0
        store.close()

    def test_partial_dialect_compiles_only_the_supported_regions(
        self, tmp_path, serialized_relation
    ):
        """A dialect without window functions replays floods but still
        collapses copy regions — mirroring sqlite between 3.8.3 and 3.25."""
        tn = TrustNetwork()
        tn.add_trust("b", "a", priority=1)
        tn.add_trust("c", "b", priority=1)
        tn.add_trust("p", "c", priority=1)
        tn.add_trust("p", "q", priority=1)
        tn.add_trust("q", "p", priority=1)
        tn.set_explicit_belief("a", "v")
        rows = [("a", "k0", "v1"), ("a", "k1", "v2")]
        no_windows = SqlDialect(name="old-sqlite", supports_flood_stages=False)
        path = str(tmp_path / "partial.db")
        backend = DbApiBackend(
            lambda: sqlite3.connect(path, check_same_thread=False),
            name="dbapi-sqlite",
            dialect=no_windows,
        )
        store = PossStore(backend=backend)
        resolver = BulkResolver(
            tn, store=store, explicit_users=["a"], scheduler="compiled"
        )
        expected = _sequential_reference(resolver.plan, rows, serialized_relation)
        compiled = resolver.compiled
        flood_regions = [r for r in compiled.regions if r.kind == "flood"]
        copy_regions = [r for r in compiled.regions if r.kind == "copy"]
        assert flood_regions and copy_regions
        resolver.load_beliefs(rows)
        report = resolver.run()
        assert serialized_relation(store) == expected
        assert report.regions_compiled == len(copy_regions)
        store.close()

    def test_sqlite_dialect_reflects_library_version(self):
        dialect = sqlite_dialect()
        assert dialect is not None  # the test environment ships >= 3.25
        assert dialect.supports_copy_regions
        assert dialect.supports_flood_stages

    def test_region_dataclasses_are_frozen(self):
        region = CompiledRegion(kind="copy", steps=(CopyStep("a", "b"),))
        with pytest.raises(AttributeError):
            region.kind = "flood"
