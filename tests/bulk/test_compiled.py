"""Differential tests for compiled SQL plan execution (bulk/compile.py).

The acceptance property of the compiled scheduler: partitioning a plan into
regions — recursive-CTE copy regions, window-function flood stages, replay
fallbacks — and executing each region as one pushed-down SQL statement must
produce a relation byte-identical to the sequential plan-order replay, on
hundreds of randomized networks, for shard counts {1, 2, 4} and for
in-memory sqlite, sqlite-file and DB-API backends.  A dialect gap never
changes the relation, only how many statements it took.
"""

from __future__ import annotations

import random
import sqlite3

import pytest

from repro.bulk.backends import DbApiBackend, SqliteFileBackend
from repro.bulk.compile import (
    MAX_COPY_EDGES,
    MAX_FLOOD_PAIRS,
    CompiledPlan,
    CompiledRegion,
    RegionLimits,
    compile_plan,
    compile_steps,
    region_schedule,
)
from repro.bulk.executor import (
    BulkResolver,
    ConcurrentBulkResolver,
    SkepticBulkResolver,
    _replay_step,
)
from repro.bulk.planner import (
    CopyStep,
    FloodStep,
    GroupedCopyStep,
    plan_resolution,
)
from repro.bulk.sql import SqlDialect, sqlite_dialect
from repro.bulk.store import PossStore, ShardedPossStore
from repro.core.network import TrustNetwork
from repro.workloads.bulkload import (
    BELIEF_USERS,
    chain_network,
    figure19_network,
    generate_objects,
)


def _random_network(rng, max_users: int = 9):
    """A random trust network plus the users carrying explicit beliefs."""
    n = rng.randint(4, max_users)
    users = [f"u{i}" for i in range(n)]
    tn = TrustNetwork()
    for user in users:
        tn.add_user(user)
    n_explicit = rng.randint(1, 2)
    explicit = users[:n_explicit]
    for child in users[n_explicit:]:
        parents = rng.sample([u for u in users if u != child], rng.randint(1, 2))
        priorities = (
            rng.sample([1, 2], len(parents))
            if rng.random() < 0.7
            else [1] * len(parents)
        )
        for parent, priority in zip(parents, priorities):
            tn.add_trust(child, parent, priority=priority)
    return tn, explicit


def _random_rows(rng, explicit, n_objects):
    rows = []
    for index in range(n_objects):
        key = f"k{index}"
        for user in explicit:
            rows.append((user, key, rng.choice(["v1", "v2", "v3"])))
    return rows


def _sequential_reference(plan, rows, serialized_relation):
    """The relation produced by a plain plan-order sequential replay."""
    store = PossStore()
    store.insert_explicit_beliefs(rows)
    with store.transaction():
        for step in plan.steps:
            _replay_step(store, step)
    expected = serialized_relation(store)
    store.close()
    return expected


def _file_backends(tmp_path, tag, count):
    return [
        SqliteFileBackend(str(tmp_path / f"{tag}-shard{i}.db")) for i in range(count)
    ]


def _dbapi_backends(tmp_path, tag, count, dialect="sqlite"):
    def factory(path):
        return lambda: sqlite3.connect(path, check_same_thread=False)

    return [
        DbApiBackend(
            factory(str(tmp_path / f"{tag}-dbshard{i}.db")),
            name="dbapi-sqlite",
            supports_concurrent_statements=sqlite3.threadsafety == 3,
            dialect=dialect,
        )
        for i in range(count)
    ]


class TestCompiledEquivalenceProperty:
    """Acceptance property: the compiled scheduler is byte-identical to
    sequential replay on >= 200 random networks, shard counts {1, 2, 4},
    through in-memory sqlite, sqlite-file and DB-API backends."""

    NETWORKS = 200
    SHARD_COUNTS = (1, 2, 4)
    BACKEND_KINDS = ("memory", "file", "dbapi")

    def test_compiled_execution_is_byte_identical_over_random_networks(
        self, tmp_path, serialized_relation
    ):
        rng = random.Random(20100807)
        flood_regions = 0
        for trial in range(self.NETWORKS):
            network, explicit = _random_network(rng)
            rows = _random_rows(rng, explicit, n_objects=rng.randint(2, 5))
            shards = self.SHARD_COUNTS[trial % len(self.SHARD_COUNTS)]
            kind = self.BACKEND_KINDS[(trial // 3) % len(self.BACKEND_KINDS)]
            if kind == "memory":
                store = ShardedPossStore(shards)
            elif kind == "file":
                store = ShardedPossStore(
                    shards, backends=_file_backends(tmp_path, f"t{trial}", shards)
                )
            else:
                store = ShardedPossStore(
                    shards, backends=_dbapi_backends(tmp_path, f"t{trial}", shards)
                )
            resolver = ConcurrentBulkResolver(
                network,
                store=store,
                explicit_users=explicit,
                scheduler="compiled",
            )
            expected = _sequential_reference(
                resolver.plan, rows, serialized_relation
            )
            compiled = resolver.compiled
            flood_regions += sum(
                1 for region in compiled.regions if region.kind == "flood"
            )
            resolver.load_beliefs(rows)
            report = resolver.run()
            assert serialized_relation(store) == expected, (
                f"trial {trial}: compiled execution diverged "
                f"(shards={shards}, backend={kind})"
            )
            assert report.scheduler == "compiled"
            # Every region compiles on sqlite >= 3.25, on every shard ...
            assert report.regions_compiled == compiled.region_count * shards
            # ... so the statement count is the compiled one, not the replay's.
            assert report.statements == compiled.statement_count() * shards
            assert report.statements_saved == (
                compiled.replay_statement_count() - compiled.statement_count()
            ) * shards
            store.close()
        # The generator must actually exercise the window-function path.
        assert flood_regions > 20

    def test_single_store_compiled_is_byte_identical(
        self, tmp_path, serialized_relation
    ):
        """One sqlite-file / DB-API store through BulkResolver directly."""
        rng = random.Random(8742)
        for trial in range(40):
            network, explicit = _random_network(rng)
            rows = _random_rows(rng, explicit, n_objects=3)
            if trial % 2:
                backend = SqliteFileBackend(str(tmp_path / f"c{trial}.db"))
            else:
                path = str(tmp_path / f"c{trial}-db.db")
                backend = DbApiBackend(
                    lambda path=path: sqlite3.connect(path, check_same_thread=False),
                    name="dbapi-sqlite",
                    dialect="sqlite",
                )
            store = PossStore(backend=backend)
            resolver = BulkResolver(
                network, store=store, explicit_users=explicit, scheduler="compiled"
            )
            expected = _sequential_reference(
                resolver.plan, rows, serialized_relation
            )
            resolver.load_beliefs(rows)
            report = resolver.run()
            assert serialized_relation(store) == expected, f"trial {trial}"
            assert report.scheduler == "compiled"
            if report.pool_workers:
                # Pooled runs (REPRO_POOL_WORKERS in the chaos matrix) trade
                # the single run transaction for one transaction per region.
                assert report.transactions >= 1
            else:
                assert report.transactions == 1
            assert report.regions_compiled == resolver.compiled.region_count
            store.close()


class TestStatementCollapse:
    """The headline win: long acyclic runs become one recursive CTE."""

    def test_400_chain_collapses_to_one_statement(self, serialized_relation):
        network = chain_network(400)
        rows = generate_objects(5, seed=21)
        reference = BulkResolver(network, explicit_users=BELIEF_USERS)
        assert reference.plan.statement_count() >= 400
        reference.load_beliefs(rows)
        reference.run()
        expected = serialized_relation(reference.store)
        reference.store.close()

        resolver = BulkResolver(
            network, explicit_users=BELIEF_USERS, scheduler="compiled"
        )
        resolver.load_beliefs(rows)
        report = resolver.run()
        assert serialized_relation(resolver.store) == expected
        # The entire acyclic chain is one recursive-CTE region.
        assert report.statements <= 5
        assert report.statements_saved >= 395
        assert report.regions_compiled >= 1
        resolver.store.close()

    def test_figure19_compiles_below_replay(self, serialized_relation):
        network = figure19_network()
        rows = generate_objects(10, seed=6)
        reference = BulkResolver(network, explicit_users=BELIEF_USERS)
        reference.load_beliefs(rows)
        reference.run()
        expected = serialized_relation(reference.store)
        replay_statements = reference.plan.statement_count()
        reference.store.close()

        resolver = BulkResolver(
            network, explicit_users=BELIEF_USERS, scheduler="compiled"
        )
        resolver.load_beliefs(rows)
        report = resolver.run()
        assert serialized_relation(resolver.store) == expected
        assert report.statements < replay_statements
        resolver.store.close()


class TestRegionBoundaries:
    """Units for the partitioning rules of compile_steps/compile_plan."""

    def test_all_acyclic_plan_is_one_copy_region(self):
        network = chain_network(50)
        plan = plan_resolution(network, explicit_users=BELIEF_USERS)
        compiled = compile_plan(plan)
        assert isinstance(compiled, CompiledPlan)
        assert [region.kind for region in compiled.regions] == ["copy"]
        assert compiled.statement_count() == 1
        assert compiled.replay_statement_count() == plan.statement_count()

    def test_single_scc_plan_is_one_flood_region(self):
        tn = TrustNetwork()
        tn.add_trust("p", "q", priority=1)
        tn.add_trust("q", "p", priority=1)
        tn.add_trust("p", "root", priority=1)
        tn.set_explicit_belief("root", "v")
        plan = plan_resolution(tn)
        flood_steps = [s for s in plan.steps if isinstance(s, FloodStep)]
        assert flood_steps, "plan shape changed: expected an SCC flood"
        compiled = compile_plan(plan)
        kinds = [region.kind for region in compiled.regions]
        assert "flood" in kinds
        for region in compiled.regions:
            if region.kind == "flood":
                assert region.pairs  # member × parent pairs, flattened later
                assert all(isinstance(s, FloodStep) for s in region.steps)

    def test_grouped_copies_flush_at_the_edge_cap(self):
        big = MAX_COPY_EDGES - 180  # two of these cannot share a region
        first = GroupedCopyStep(
            parent="r", children=tuple(f"a{i}" for i in range(big))
        )
        second = GroupedCopyStep(
            parent="r", children=tuple(f"b{i}" for i in range(big))
        )
        regions = compile_steps([first, second])
        assert [region.kind for region in regions] == ["copy", "copy"]
        assert len(regions[0].edges) == big
        assert len(regions[1].edges) == big

    def test_oversized_grouped_copy_becomes_a_replay_region(self):
        step = GroupedCopyStep(
            parent="r",
            children=tuple(f"c{i}" for i in range(MAX_COPY_EDGES + 20)),
        )
        regions = compile_steps([step])
        assert [region.kind for region in regions] == ["replay"]
        # Replay of one grouped copy is still one statement: nothing lost.
        assert regions[0].statement_count() == 1
        assert regions[0].replay_statement_count() == 1

    def test_copy_straddling_a_region_edge_stays_correct(self, serialized_relation):
        """A copy chain interleaved with a flood splits into copy / flood /
        copy regions whose concatenation replays the exact plan order."""
        tn = TrustNetwork()
        tn.add_trust("b", "a", priority=1)
        tn.add_trust("p", "b", priority=1)
        tn.add_trust("p", "q", priority=1)
        tn.add_trust("q", "p", priority=1)
        tn.add_trust("z", "p", priority=1)
        tn.set_explicit_belief("a", "v")
        plan = plan_resolution(tn)
        compiled = compile_plan(plan)
        kinds = [region.kind for region in compiled.regions]
        assert kinds.count("flood") >= 1
        assert kinds.count("copy") >= 2  # before and after the SCC
        # Region steps concatenate back to the plan's step sequence.
        flattened = [s for region in compiled.regions for s in region.steps]
        assert flattened == list(plan.steps)
        rows = [("a", "k0", "v1"), ("a", "k1", "v2")]
        expected = _sequential_reference(plan, rows, serialized_relation)
        store = PossStore()
        resolver = BulkResolver(
            tn, store=store, explicit_users=["a"], scheduler="compiled"
        )
        resolver.load_beliefs(rows)
        resolver.run()
        assert serialized_relation(store) == expected
        store.close()

    def test_blocked_flood_compiles_into_a_blocked_flood_region(self):
        blocked = FloodStep(
            members=("p",), parents=("source",), blocked=(("p", ("v1", "v2")),)
        )
        regions = compile_steps([blocked])
        assert [region.kind for region in regions] == ["blocked_flood"]
        region = regions[0]
        assert region.pairs == (("p", "source"),)
        assert region.blocked == (("p", "v1"), ("p", "v2"))
        assert region.statement_count() == 1
        # Replay needs two statements per constrained group (filtered
        # values plus the ⊥ rows), so compiling saves one round trip.
        assert region.replay_statement_count() == 2

    def test_blocked_floods_merge_only_when_members_stay_disjoint_from_parents(self):
        first = FloodStep(
            members=("p",), parents=("source",), blocked=(("p", ("v1",)),)
        )
        independent = FloodStep(
            members=("r",), parents=("source",), blocked=(("r", ("v2",)),)
        )
        dependent = FloodStep(
            members=("s",), parents=("p",), blocked=(("s", ("v3",)),)
        )
        assert [r.kind for r in compile_steps([first, independent])] == [
            "blocked_flood"
        ]
        # A blocked flood reading a member closed by the open run must not
        # share its statement: the window pass would miss the fresh rows.
        assert [r.kind for r in compile_steps([first, dependent])] == [
            "blocked_flood",
            "blocked_flood",
        ]

    def test_oversized_blocked_flood_spills_to_replay(self):
        members = tuple(f"m{i}" for i in range(40))
        parents = tuple(f"p{i}" for i in range(MAX_FLOOD_PAIRS // 40 + 1))
        oversized = FloodStep(
            members=members,
            parents=parents,
            blocked=(("m0", ("v1",)),),
        )
        regions = compile_steps([oversized])
        assert [region.kind for region in regions] == ["replay"]

    def test_journal_markers_are_strictly_increasing(self):
        network = figure19_network()
        plan = plan_resolution(network, explicit_users=BELIEF_USERS)
        compiled = compile_plan(plan)
        markers = compiled.journal_markers()
        assert len(markers) == compiled.region_count
        assert list(markers) == sorted(set(markers))
        assert markers[-1] == len(plan.steps) - 1

    def test_flood_pair_cap_spills_to_replay(self):
        members = tuple(f"m{i}" for i in range(40))
        parents = tuple(f"p{i}" for i in range(MAX_FLOOD_PAIRS // 40 + 1))
        oversized = FloodStep(members=members, parents=parents)
        regions = compile_steps([oversized])
        assert [region.kind for region in regions] == ["replay"]


class TestDialectFallback:
    """Capability gaps degrade to replay, never to a different relation."""

    def test_dialectless_dbapi_backend_falls_back_to_replay(
        self, tmp_path, serialized_relation
    ):
        network = figure19_network()
        rows = generate_objects(8, seed=9)
        path = str(tmp_path / "nodialect.db")
        backend = DbApiBackend(
            lambda: sqlite3.connect(path, check_same_thread=False),
            name="dbapi-unknown",
        )
        assert backend.compiled_dialect is None
        assert not backend.supports_compiled_regions
        store = PossStore(backend=backend)
        resolver = BulkResolver(
            network, store=store, explicit_users=BELIEF_USERS, scheduler="compiled"
        )
        expected = _sequential_reference(resolver.plan, rows, serialized_relation)
        resolver.load_beliefs(rows)
        report = resolver.run()
        assert serialized_relation(store) == expected
        assert report.scheduler == "compiled"
        assert report.regions_compiled == 0  # every region replayed
        assert report.statements == resolver.plan.statement_count()
        assert report.statements_saved == 0
        store.close()

    def test_partial_dialect_compiles_only_the_supported_regions(
        self, tmp_path, serialized_relation
    ):
        """A dialect without window functions replays floods but still
        collapses copy regions — mirroring sqlite between 3.8.3 and 3.25."""
        tn = TrustNetwork()
        tn.add_trust("b", "a", priority=1)
        tn.add_trust("c", "b", priority=1)
        tn.add_trust("p", "c", priority=1)
        tn.add_trust("p", "q", priority=1)
        tn.add_trust("q", "p", priority=1)
        tn.set_explicit_belief("a", "v")
        rows = [("a", "k0", "v1"), ("a", "k1", "v2")]
        no_windows = SqlDialect(name="old-sqlite", supports_flood_stages=False)
        path = str(tmp_path / "partial.db")
        backend = DbApiBackend(
            lambda: sqlite3.connect(path, check_same_thread=False),
            name="dbapi-sqlite",
            dialect=no_windows,
        )
        store = PossStore(backend=backend)
        resolver = BulkResolver(
            tn, store=store, explicit_users=["a"], scheduler="compiled"
        )
        expected = _sequential_reference(resolver.plan, rows, serialized_relation)
        compiled = resolver.compiled
        flood_regions = [r for r in compiled.regions if r.kind == "flood"]
        copy_regions = [r for r in compiled.regions if r.kind == "copy"]
        assert flood_regions and copy_regions
        resolver.load_beliefs(rows)
        report = resolver.run()
        assert serialized_relation(store) == expected
        assert report.regions_compiled == len(copy_regions)
        store.close()

    def test_sqlite_dialect_reflects_library_version(self):
        dialect = sqlite_dialect()
        assert dialect is not None  # the test environment ships >= 3.25
        assert dialect.supports_copy_regions
        assert dialect.supports_flood_stages

    def test_region_dataclasses_are_frozen(self):
        region = CompiledRegion(kind="copy", steps=(CopyStep("a", "b"),))
        with pytest.raises(AttributeError):
            region.kind = "flood"


def _random_skeptic_scenario(rng, max_users: int = 8):
    """A random network with constrained 2-cycle gadgets hanging off it.

    Returns ``(network, positive_users, constraints)``.  Each gadget is the
    Skeptic-test shape — a member pair ``g<i>a ↔ g<i>b`` whose second node
    prefers a negative-only filter — so the plan carries flood steps with
    blocked values, exercising the blocked-flood compiler on every trial.
    """
    network, explicit = _random_network(rng, max_users=max_users)
    hosts = sorted(str(user) for user in network.users)
    constraints = {}
    for index in range(rng.randint(1, 3)):
        host = rng.choice(hosts)
        first, second, filt = f"g{index}a", f"g{index}b", f"g{index}f"
        network.add_trust(first, host, priority=2)
        network.add_trust(first, second, priority=1)
        network.add_trust(second, filt, priority=2)
        network.add_trust(second, first, priority=1)
        constraints[filt] = tuple(
            sorted(rng.sample(["v1", "v2", "v3"], rng.randint(1, 2)))
        )
    return network, explicit, constraints


class TestSkepticCompiledEquivalenceProperty:
    """Tentpole acceptance: SkepticBulkResolver under scheduler="compiled"
    pushes blocked floods down (regions_compiled > 0, statements_saved > 0)
    and stays byte-identical to sequential replay on >= 200 random
    constrained networks, shard counts {1, 2, 4}, through in-memory sqlite,
    sqlite-file and DB-API backends."""

    NETWORKS = 200
    SHARD_COUNTS = (1, 2, 4)
    BACKEND_KINDS = ("memory", "file", "dbapi")

    def test_skeptic_compiled_is_byte_identical_over_random_networks(
        self, tmp_path, serialized_relation
    ):
        rng = random.Random(20260807)
        blocked_regions = 0
        compiled_with_savings = 0
        for trial in range(self.NETWORKS):
            network, explicit, constraints = _random_skeptic_scenario(rng)
            rows = _random_rows(rng, explicit, n_objects=rng.randint(2, 4))
            shards = self.SHARD_COUNTS[trial % len(self.SHARD_COUNTS)]
            kind = self.BACKEND_KINDS[(trial // 3) % len(self.BACKEND_KINDS)]
            if shards == 1:
                if kind == "file":
                    store = PossStore(
                        backend=SqliteFileBackend(str(tmp_path / f"s{trial}.db"))
                    )
                elif kind == "dbapi":
                    store = PossStore(
                        backend=_dbapi_backends(tmp_path, f"s{trial}", 1)[0]
                    )
                else:
                    store = PossStore()
            elif kind == "memory":
                store = ShardedPossStore(shards)
            elif kind == "file":
                store = ShardedPossStore(
                    shards, backends=_file_backends(tmp_path, f"s{trial}", shards)
                )
            else:
                store = ShardedPossStore(
                    shards, backends=_dbapi_backends(tmp_path, f"s{trial}", shards)
                )
            resolver = SkepticBulkResolver(
                network,
                positive_users=explicit,
                negative_constraints=constraints,
                store=store,
                scheduler="compiled",
            )
            expected = _sequential_reference(
                resolver.plan, rows, serialized_relation
            )
            compiled = resolver.compiled
            blocked_regions += sum(
                1
                for region in compiled.regions
                if region.kind == "blocked_flood" and region.pairs
            )
            resolver.load_beliefs(rows)
            report = resolver.run()
            assert serialized_relation(store) == expected, (
                f"trial {trial}: Skeptic compiled execution diverged "
                f"(shards={shards}, backend={kind})"
            )
            assert report.scheduler == "compiled"
            # Every region compiles on this sqlite (>= 3.28): the fan-out
            # store executes each region once, per-shard inside.
            assert report.regions_compiled == compiled.region_count
            if report.pool_workers:
                # Staged pooled regions split into a CREATE TEMP TABLE and
                # an INSERT … SELECT, so up to two statements per region.
                assert (
                    compiled.statement_count()
                    <= report.statements
                    <= 2 * compiled.statement_count()
                )
            else:
                assert report.statements == compiled.statement_count() * shards
            if report.statements_saved:
                compiled_with_savings += 1
            store.close()
        # The generator must actually exercise the blocked-flood path, and
        # compiling must save round trips on a solid majority of trials.
        assert blocked_regions > 50
        assert compiled_with_savings > self.NETWORKS // 2

    def test_skeptic_chain_workload_compiles_blocked_floods(
        self, serialized_relation
    ):
        """The bench workload end to end: regions_compiled > 0 and
        statements_saved > 0, byte-identical to the pipelined replay."""
        from repro.workloads.bulkload import skeptic_chain_network

        network, constraints = skeptic_chain_network(60)
        rows = [
            (user, f"k{i}", f"a{4 * (i % 9 + 1)}" if i % 2 else f"b{i}")
            for i in range(4)
            for user in BELIEF_USERS
        ]
        reference = SkepticBulkResolver(
            network,
            positive_users=BELIEF_USERS,
            negative_constraints=constraints,
        )
        reference.load_beliefs(rows)
        reference.run()
        expected = serialized_relation(reference.store)
        reference.store.close()

        resolver = SkepticBulkResolver(
            network,
            positive_users=BELIEF_USERS,
            negative_constraints=constraints,
            scheduler="compiled",
        )
        resolver.load_beliefs(rows)
        report = resolver.run()
        assert serialized_relation(resolver.store) == expected
        assert report.regions_compiled > 0
        assert report.statements_saved > 0
        kinds = {region.kind for region in resolver.compiled.regions}
        assert "blocked_flood" in kinds
        resolver.store.close()


class TestRegionSchedule:
    """Units for the region-level dependency DAG (region_schedule)."""

    def test_chain_regions_schedule_linearly(self):
        network = chain_network(100)
        plan = plan_resolution(network, explicit_users=BELIEF_USERS)
        limits = RegionLimits(max_copy_edges=25, max_flood_pairs=25)
        compiled = compile_plan(plan, limits=limits)
        assert compiled.region_count == 4
        schedule = region_schedule(compiled)
        assert schedule.region_count == 4
        # Each region reads users the previous one closes: a linear DAG.
        assert list(schedule.depends_on) == [(), (0,), (1,), (2,)]
        assert [list(stage) for stage in schedule.stages] == [[0], [1], [2], [3]]

    def test_independent_chains_share_one_stage(self):
        from repro.workloads.bulkload import multi_chain_network

        network, roots = multi_chain_network(4, 30)
        plan = plan_resolution(network, explicit_users=roots)
        limits = RegionLimits(max_copy_edges=30, max_flood_pairs=30)
        compiled = compile_plan(plan, limits=limits)
        assert compiled.region_count == 4
        schedule = region_schedule(compiled)
        assert all(deps == () for deps in schedule.depends_on)
        assert schedule.stage_count == 1
        assert sorted(schedule.stages[0]) == [0, 1, 2, 3]

    def test_flood_region_depends_on_the_copy_region_closing_its_parents(self):
        tn = TrustNetwork()
        tn.add_trust("b", "a", priority=1)
        tn.add_trust("p", "b", priority=1)
        tn.add_trust("p", "q", priority=1)
        tn.add_trust("q", "p", priority=1)
        tn.set_explicit_belief("a", "v")
        plan = plan_resolution(tn)
        compiled = compile_plan(plan)
        kinds = [region.kind for region in compiled.regions]
        assert "flood" in kinds
        schedule = region_schedule(compiled)
        flood_index = kinds.index("flood")
        assert schedule.depends_on[flood_index], (
            "the SCC flood reads users closed by the copy region before it"
        )

    def test_schedule_covers_every_region_exactly_once(self):
        network = figure19_network()
        plan = plan_resolution(network, explicit_users=BELIEF_USERS)
        compiled = compile_plan(plan)
        schedule = region_schedule(compiled)
        scheduled = sorted(i for stage in schedule.stages for i in stage)
        assert scheduled == list(range(compiled.region_count))


class TestWorkersReporting:
    """BulkRunReport.workers must report reality, not a hardcoded 1."""

    def _multi_region_setup(self):
        from repro.workloads.bulkload import multi_chain_network

        network, roots = multi_chain_network(4, 20)
        plan = plan_resolution(network, explicit_users=roots)
        limits = RegionLimits(max_copy_edges=20, max_flood_pairs=20)
        compiled = compile_plan(plan, limits=limits)
        rows = [(root, f"k{i}", "v") for root in roots for i in range(2)]
        return network, roots, plan, compiled, rows

    def test_single_store_compiled_reports_the_worker_pool(
        self, tmp_path, serialized_relation
    ):
        network, roots, plan, compiled, rows = self._multi_region_setup()
        expected = _sequential_reference(plan, rows, serialized_relation)
        backend = SqliteFileBackend(str(tmp_path / "workers.db"))
        assert backend.supports_concurrent_replay
        store = PossStore(backend=backend)
        resolver = BulkResolver(
            network,
            store=store,
            explicit_users=roots,
            scheduler="compiled",
            workers=3,
            plan=plan,
            compiled_plan=compiled,
        )
        report = None
        if store.supports_concurrent_statements:
            resolver.load_beliefs(rows)
            report = resolver.run()
            if report.pool_workers:
                # The pooled path sizes its lanes from pool_workers, not
                # the replay worker count.
                assert report.workers == report.pool_workers
            else:
                assert report.workers == 3
            assert serialized_relation(store) == expected
        store.close()

    def test_memory_store_clamps_workers_to_one(self):
        network, roots, plan, compiled, rows = self._multi_region_setup()
        resolver = BulkResolver(
            network,
            explicit_users=roots,
            scheduler="compiled",
            workers=4,
            plan=plan,
            compiled_plan=compiled,
        )
        resolver.load_beliefs(rows)
        report = resolver.run()
        # The in-memory backend cannot move its connection across threads:
        # the run degrades to one worker and must say so.
        assert report.workers == 1
        resolver.store.close()

    def test_sharded_compiled_run_reports_shard_lanes(self, tmp_path):
        network = figure19_network()
        store = ShardedPossStore(
            2, backends=_file_backends(tmp_path, "lanes", 2)
        )
        concurrent = store.supports_concurrent_replay
        resolver = ConcurrentBulkResolver(
            network,
            store=store,
            explicit_users=BELIEF_USERS,
            scheduler="compiled",
        )
        resolver.load_beliefs(generate_objects(6, seed=3))
        report = resolver.run()
        assert report.workers == (2 if concurrent else 1)
        store.close()

    def test_sharded_checkpointed_run_reports_recovery_lanes(self, tmp_path):
        network = figure19_network()
        store = ShardedPossStore(
            2, backends=_file_backends(tmp_path, "ck-lanes", 2)
        )
        concurrent = store.supports_concurrent_replay
        resolver = ConcurrentBulkResolver(
            network,
            store=store,
            explicit_users=BELIEF_USERS,
            scheduler="compiled",
            checkpoint="workers-report",
        )
        resolver.load_beliefs(generate_objects(6, seed=3))
        report = resolver.run()
        assert report.checkpointed
        assert report.workers == (2 if concurrent else 1)
        store.close()


class TestAdaptiveRegionLimits:
    """RegionLimits sizing from the probed bind capacity."""

    def test_for_bind_params_halves_the_budget(self):
        assert RegionLimits.for_bind_params(999).max_copy_edges == 499
        assert RegionLimits.for_bind_params(999).max_flood_pairs == 499
        assert RegionLimits.for_bind_params(32_766).max_copy_edges == 16_382
        assert RegionLimits.for_bind_params(250_000).max_copy_edges == 124_999

    def test_for_bind_params_reserves_the_bottom_parameter(self):
        # One scalar is reserved for the ⊥ literal of blocked floods, so a
        # 3-parameter budget still fits one (member, parent) pair.
        limits = RegionLimits.for_bind_params(3)
        assert limits.max_copy_edges == 1
        assert limits.max_flood_pairs == 1
        assert RegionLimits.for_bind_params(1).max_copy_edges == 1

    def test_deep_chain_collapses_to_one_region_under_the_probed_limit(self):
        from repro.bulk.backends import sqlite_max_bind_params

        network = chain_network(1600)
        plan = plan_resolution(network, explicit_users=BELIEF_USERS)
        capacity = sqlite_max_bind_params()
        compiled = compile_plan(plan, limits=RegionLimits.for_bind_params(capacity))
        historic = compile_plan(plan)
        if capacity >= 2 * 1601:
            assert compiled.region_count == 1
        assert compiled.region_count <= historic.region_count

    def test_executor_sizes_regions_from_the_store_capacity(self):
        network = chain_network(1600)
        resolver = BulkResolver(
            network, explicit_users=BELIEF_USERS, scheduler="compiled"
        )
        assert (
            resolver.region_limits
            == RegionLimits.for_bind_params(resolver.store.max_bind_params)
        )
        if resolver.store.max_bind_params >= 2 * 1601:
            assert resolver.compiled.region_count == 1
        resolver.store.close()


class TestSqliteVersionGating:
    """Monkeypatched sqlite version strings degrade per region, never crash.

    The dialect is derived from sqlite3.sqlite_version_info behind an
    lru_cache; each scenario clears the cache, patches the version, and
    checks that the compiled run (a) falls back to replay exactly for the
    unsupported region kinds and (b) still passes byte-identity.
    """

    @pytest.fixture(autouse=True)
    def _fresh_dialect_cache(self):
        sqlite_dialect.cache_clear()
        yield
        sqlite_dialect.cache_clear()

    def _skeptic_run(self, serialized_relation):
        from repro.workloads.bulkload import skeptic_chain_network

        network, constraints = skeptic_chain_network(24)
        rows = [
            (user, f"k{i}", f"a{4 * (i % 5 + 1)}")
            for i in range(3)
            for user in BELIEF_USERS
        ]
        resolver = SkepticBulkResolver(
            network,
            positive_users=BELIEF_USERS,
            negative_constraints=constraints,
            scheduler="compiled",
        )
        expected = _sequential_reference(resolver.plan, rows, serialized_relation)
        resolver.load_beliefs(rows)
        report = resolver.run()
        relation = serialized_relation(resolver.store)
        kinds = [
            region.kind
            for region in resolver.compiled.regions
            if region.statement_count() or region.kind == "replay"
        ]
        # Fence-only flood regions (no pairs) complete in zero statements on
        # any dialect and always count as compiled.
        fences = sum(
            1
            for region in resolver.compiled.regions
            if region.kind in ("flood", "blocked_flood") and not region.pairs
        )
        resolver.store.close()
        return report, relation == expected, kinds, fences

    def test_pre_cte_sqlite_replays_everything(
        self, monkeypatch, serialized_relation
    ):
        monkeypatch.setattr(sqlite3, "sqlite_version_info", (3, 7, 17))
        assert sqlite_dialect() is None
        report, identical, _kinds, fences = self._skeptic_run(serialized_relation)
        assert identical
        assert report.regions_compiled == fences
        assert report.statements_saved == 0

    def test_pre_window_sqlite_compiles_only_copy_regions(
        self, monkeypatch, serialized_relation
    ):
        monkeypatch.setattr(sqlite3, "sqlite_version_info", (3, 20, 0))
        dialect = sqlite_dialect()
        assert dialect.supports_copy_regions
        assert not dialect.supports_flood_stages
        assert not dialect.supports_blocked_floods
        report, identical, kinds, fences = self._skeptic_run(serialized_relation)
        assert identical
        copy_regions = sum(1 for kind in kinds if kind == "copy")
        assert copy_regions > 0
        assert report.regions_compiled == copy_regions + fences

    def test_pre_blocked_flood_sqlite_replays_only_blocked_regions(
        self, monkeypatch, serialized_relation
    ):
        monkeypatch.setattr(sqlite3, "sqlite_version_info", (3, 26, 0))
        dialect = sqlite_dialect()
        assert dialect.supports_flood_stages
        assert not dialect.supports_blocked_floods
        report, identical, kinds, fences = self._skeptic_run(serialized_relation)
        assert identical
        unblocked = sum(1 for kind in kinds if kind in ("copy", "flood"))
        blocked = sum(1 for kind in kinds if kind == "blocked_flood")
        assert blocked > 0
        assert unblocked > 0
        assert report.regions_compiled == unblocked + fences

    def test_modern_sqlite_compiles_blocked_floods(
        self, monkeypatch, serialized_relation
    ):
        monkeypatch.setattr(sqlite3, "sqlite_version_info", (3, 28, 0))
        dialect = sqlite_dialect()
        assert dialect.supports_blocked_floods
        report, identical, kinds, fences = self._skeptic_run(serialized_relation)
        assert identical
        assert report.regions_compiled == fences + len(
            [kind for kind in kinds if kind != "replay"]
        )
