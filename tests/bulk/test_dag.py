"""Tests for the dependency-DAG lowering of resolution plans."""

from __future__ import annotations

import random

import pytest

from repro.bulk.executor import BulkResolver, _replay_step
from repro.bulk.planner import (
    CopyStep,
    FloodStep,
    GroupedCopyStep,
    plan_dag,
    plan_resolution,
    plan_skeptic_resolution,
    step_io,
)
from repro.bulk.store import PossStore
from repro.core.errors import BulkProcessingError
from repro.core.network import TrustNetwork
from repro.workloads.bulkload import BELIEF_USERS, figure19_network, generate_objects


class TestStepIo:
    def test_copy_step_reads_parent_closes_child(self):
        reads, closes = step_io(CopyStep(parent="a", child="b"))
        assert reads == ("a",) and closes == ("b",)

    def test_grouped_copy_closes_all_children(self):
        reads, closes = step_io(GroupedCopyStep(parent="a", children=("b", "c")))
        assert reads == ("a",) and closes == ("b", "c")

    def test_flood_reads_parents_closes_members(self):
        step = FloodStep(members=("m1", "m2"), parents=("p1",))
        reads, closes = step_io(step)
        assert reads == ("p1",) and closes == ("m1", "m2")

    def test_unknown_step_rejected(self):
        with pytest.raises(BulkProcessingError):
            step_io("not-a-step")


class TestPlanDagStructure:
    def test_chain_is_one_node_per_stage(self):
        tn = TrustNetwork()
        tn.add_trust("b", "a", priority=1)
        tn.add_trust("c", "b", priority=1)
        dag = plan_resolution(tn, explicit_users=["a"]).dag()
        assert dag.stage_count == 2
        assert [node.depends_on for node in dag.nodes] == [(), (0,)]

    def test_independent_subtrees_share_a_stage(self):
        # Two disjoint chains hanging off two explicit users: no cross edges.
        tn = TrustNetwork()
        tn.add_trust("b", "a", priority=1)
        tn.add_trust("d", "c", priority=1)
        tn.add_trust("e", "b", priority=1)
        dag = plan_resolution(tn, explicit_users=["a", "c"]).dag()
        assert dag.stages[0] and len(dag.stages[0]) == 2
        assert dag.edge_count() == 1  # only e-after-b
        assert dag.stage_count == 2

    def test_explicit_sources_contribute_no_edges(self):
        tn = TrustNetwork()
        for child in ("b", "c", "d"):
            tn.add_trust(child, "a", priority=1)
        dag = plan_resolution(tn, explicit_users=["a"]).dag()
        (node,) = dag.nodes
        assert node.depends_on == ()
        assert node.stage == 0

    def test_flood_depends_on_its_parents_closers(self, oscillator_network):
        dag = plan_resolution(oscillator_network).dag()
        floods = [n for n in dag.nodes if isinstance(n.step, FloodStep)]
        assert floods
        for node in floods:
            closers = {
                dep
                for dep in node.depends_on
            }
            # every non-explicit parent must be closed by a dependency
            reads, _ = step_io(node.step)
            explicit = {str(u) for u in dag.plan.explicit_users}
            closed_by_deps = {
                str(user)
                for dep in closers
                for user in step_io(dag.nodes[dep].step)[1]
            }
            for parent in reads:
                assert str(parent) in explicit | closed_by_deps

    def test_figure19_dag_shape(self):
        dag = plan_resolution(
            figure19_network(), explicit_users=BELIEF_USERS
        ).dag()
        # Statement count is a plan property, untouched by the lowering.
        assert dag.statement_count() == dag.plan.statement_count()
        assert dag.stage_count >= 2
        assert len(dag.topological_order()) == len(dag.plan.steps)
        # Dependencies always point backwards in plan order.
        for node in dag.nodes:
            assert all(dep < node.index for dep in node.depends_on)

    def test_stages_partition_the_nodes(self):
        dag = plan_resolution(
            figure19_network(), explicit_users=BELIEF_USERS
        ).dag()
        flattened = sorted(index for stage in dag.stages for index in stage)
        assert flattened == list(range(len(dag.nodes)))
        for stage_level, stage in enumerate(dag.stages):
            for index in stage:
                assert dag.nodes[index].stage == stage_level
                assert all(
                    dag.nodes[dep].stage < stage_level
                    for dep in dag.nodes[index].depends_on
                )

    def test_ungrouped_and_grouped_plans_lower_to_equivalent_dags(self):
        network = figure19_network()
        grouped = plan_resolution(network, explicit_users=BELIEF_USERS).dag()
        ungrouped = plan_resolution(
            network, explicit_users=BELIEF_USERS, group_copies=False
        ).dag()
        # Same users closed overall, same statement counts as their plans.
        def closed_users(dag):
            return {
                str(user)
                for node in dag.nodes
                for user in step_io(node.step)[1]
            }

        assert closed_users(grouped) == closed_users(ungrouped)
        assert grouped.statement_count() <= ungrouped.statement_count()

    def test_double_close_rejected(self):
        plan = plan_resolution(figure19_network(), explicit_users=BELIEF_USERS)
        plan.steps.append(plan.steps[0])  # closes the same users twice
        with pytest.raises(BulkProcessingError):
            plan_dag(plan)

    def test_forward_read_rejected(self):
        """A step reading a user that only a later step closes is malformed:
        it must not lower to an (edge-less) DAG that replays wrongly."""
        tn = TrustNetwork()
        tn.add_trust("b", "a", priority=1)
        tn.add_trust("x", "a", priority=1)
        plan = plan_resolution(tn, explicit_users=["a"])
        plan.steps = [
            CopyStep(parent="x", child="b"),  # reads x before its closer
            CopyStep(parent="a", child="x"),
        ]
        with pytest.raises(BulkProcessingError, match="not causal"):
            plan_dag(plan)


def random_topological_order(dag, rng):
    """A random topological order of the DAG (Kahn with shuffled frontier)."""
    remaining_deps = {node.index: set(node.depends_on) for node in dag.nodes}
    dependents = {node.index: [] for node in dag.nodes}
    for node in dag.nodes:
        for dep in node.depends_on:
            dependents[dep].append(node.index)
    frontier = [index for index, deps in remaining_deps.items() if not deps]
    order = []
    while frontier:
        rng.shuffle(frontier)
        index = frontier.pop()
        order.append(index)
        for dependent in dependents[index]:
            remaining_deps[dependent].discard(index)
            if not remaining_deps[dependent]:
                frontier.append(dependent)
    assert len(order) == len(dag.nodes)
    return order


def replay_in_order(plan, dag, order, rows):
    store = PossStore()
    store.insert_explicit_beliefs(rows)
    with store.transaction():
        for index in order:
            _replay_step(store, dag.nodes[index].step)
    return store


class TestTopologicalReplayEquivalence:
    """DAG topological replay must be byte-identical to sequential replay."""

    def test_figure19_any_topological_order_matches_sequential(self, serialized_relation):
        network = figure19_network()
        rows = generate_objects(25, conflict_probability=0.5, seed=23)
        resolver = BulkResolver(network, explicit_users=BELIEF_USERS)
        resolver.load_beliefs(rows)
        resolver.run()
        sequential = serialized_relation(resolver.store)
        resolver.store.close()

        # Figure 19 is not binary: the resolver plans on the binarized twin,
        # so the DAG replay must lower that same plan.
        plan = resolver.plan
        dag = plan.dag()
        rng = random.Random(5)
        orders = [
            [node.index for node in dag.topological_order()],
            # stage order with each stage's independent nodes reversed
            [i for stage in dag.stages for i in reversed(stage)],
        ] + [random_topological_order(dag, rng) for _ in range(5)]
        for order in orders:
            store = replay_in_order(plan, dag, order, rows)
            assert serialized_relation(store) == sequential, order
            store.close()

    def test_skeptic_plan_dag_replay_matches_sequential(self, serialized_relation):
        tn = TrustNetwork()
        tn.add_trust("p", "source", priority=2)
        tn.add_trust("p", "q", priority=1)
        tn.add_trust("q", "filter", priority=2)
        tn.add_trust("q", "p", priority=1)
        tn.add_trust("r", "source", priority=2)
        plan = plan_skeptic_resolution(
            tn, positive_users=["source"], negative_constraints={"filter": ["v1"]}
        )
        rows = [("source", "k0", "v1"), ("source", "k1", "v2")]
        dag = plan.dag()
        sequential_store = replay_in_order(
            plan, dag, [node.index for node in dag.topological_order()], rows
        )
        sequential = serialized_relation(sequential_store)
        sequential_store.close()
        rng = random.Random(9)
        for _ in range(5):
            store = replay_in_order(
                plan, dag, random_topological_order(dag, rng), rows
            )
            assert serialized_relation(store) == sequential
            store.close()

    def test_randomized_networks_dag_replay_matches_sequential(self, serialized_relation):
        """Random DAG orders over random networks stay byte-identical."""
        rng = random.Random(77)
        for trial in range(25):
            tn, explicit = _random_network(rng)
            rows = _random_rows(rng, explicit)
            plan = plan_resolution(tn, explicit_users=explicit)
            dag = plan.dag()
            reference = replay_in_order(
                plan, dag, [node.index for node in dag.topological_order()], rows
            )
            expected = serialized_relation(reference)
            reference.close()
            store = replay_in_order(
                plan, dag, random_topological_order(dag, rng), rows
            )
            assert serialized_relation(store) == expected, f"trial {trial}"
            store.close()


def _random_network(rng, max_users: int = 9):
    """A random binary-ish trust network plus its explicit users."""
    n = rng.randint(4, max_users)
    users = [f"u{i}" for i in range(n)]
    tn = TrustNetwork()
    for user in users:
        tn.add_user(user)
    n_explicit = rng.randint(1, 2)
    explicit = users[:n_explicit]
    for child in users[n_explicit:]:
        parents = rng.sample([u for u in users if u != child], rng.randint(1, 2))
        priorities = rng.sample([1, 2], len(parents)) if rng.random() < 0.7 else [1] * len(parents)
        for parent, priority in zip(parents, priorities):
            tn.add_trust(child, parent, priority=priority)
    return tn, explicit


def _random_rows(rng, explicit, n_objects: int = 4):
    rows = []
    for index in range(n_objects):
        key = f"k{index}"
        for user in explicit:
            rows.append((user, key, rng.choice(["v1", "v2", "v3"])))
    return rows
