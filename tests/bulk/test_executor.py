"""Integration tests: bulk SQL resolution matches per-object Algorithm 1/2."""

from __future__ import annotations

import pytest

from repro.bulk.executor import BulkResolver, SkepticBulkResolver
from repro.bulk.store import BOTTOM_VALUE
from repro.core.beliefs import BeliefSet
from repro.core.binarize import binarize
from repro.core.errors import BulkProcessingError
from repro.core.network import TrustNetwork
from repro.core.resolution import resolve
from repro.core.skeptic import resolve_skeptic
from repro.workloads.bulkload import BELIEF_USERS, figure19_network, generate_objects


def per_object_reference(network, rows):
    """Possible values per (user, key) via per-object Algorithm 1."""
    by_key = {}
    for user, key, value in rows:
        by_key.setdefault(key, []).append((user, value))
    reference = {}
    for key, beliefs in by_key.items():
        per_object = network.copy()
        for user, value in beliefs:
            per_object.set_explicit_belief(user, value)
        resolved = resolve(binarize(per_object).btn)
        for user in network.users:
            reference[(str(user), str(key))] = set(
                map(str, resolved.possible_values(user))
            )
    return reference


class TestBulkResolver:
    def test_matches_per_object_resolution_on_figure19(self):
        network = figure19_network()
        rows = generate_objects(40, conflict_probability=0.5, seed=7)
        resolver = BulkResolver(network, explicit_users=BELIEF_USERS)
        resolver.load_beliefs(rows)
        report = resolver.run()
        assert report.objects == 40
        reference = per_object_reference(network, rows)
        for (user, key), expected in reference.items():
            assert set(resolver.possible_values(user, key)) == expected, (user, key)
        resolver.store.close()

    def test_statement_count_is_independent_of_object_count(self):
        network = figure19_network()
        counts = []
        for n_objects in (5, 50):
            resolver = BulkResolver(network, explicit_users=BELIEF_USERS)
            resolver.load_beliefs(generate_objects(n_objects, seed=1))
            report = resolver.run()
            counts.append(report.statements)
            resolver.store.close()
        assert counts[0] == counts[1]

    def test_certain_values_reported(self, oscillator_network):
        resolver = BulkResolver(oscillator_network)
        resolver.load_beliefs([("x3", "k0", "v"), ("x4", "k0", "w")])
        resolver.run()
        assert resolver.certain_values("x3", "k0") == frozenset({"v"})
        assert resolver.certain_values("x1", "k0") == frozenset()
        assert resolver.possible_values("x1", "k0") == frozenset({"v", "w"})
        resolver.store.close()

    def test_bulk_assumption_ii_enforced(self):
        network = figure19_network()
        resolver = BulkResolver(network, explicit_users=BELIEF_USERS)
        with pytest.raises(BulkProcessingError):
            resolver.load_beliefs(
                [("x6", "k0", "v"), ("x7", "k0", "w"), ("x6", "k1", "v")]
            )

    def test_rejects_beliefs_from_unplanned_users(self):
        network = figure19_network()
        resolver = BulkResolver(network, explicit_users=BELIEF_USERS)
        with pytest.raises(BulkProcessingError):
            resolver.load_beliefs([("x1", "k0", "v")])

    def test_conflicting_and_agreeing_objects(self, oscillator_network):
        resolver = BulkResolver(oscillator_network)
        resolver.load_beliefs(
            [
                ("x3", "agree", "same"),
                ("x4", "agree", "same"),
                ("x3", "clash", "v"),
                ("x4", "clash", "w"),
            ]
        )
        report = resolver.run()
        assert resolver.certain_values("x1", "agree") == frozenset({"same"})
        assert resolver.certain_values("x1", "clash") == frozenset()
        assert report.conflicts > 0
        resolver.store.close()


class TestGroupedCopyEquivalence:
    """Grouped copy plans must resolve byte-identically to ungrouped ones."""

    def test_figure19_grouped_matches_ungrouped(self, serialized_relation):
        network = figure19_network()
        rows = generate_objects(30, conflict_probability=0.5, seed=19)
        relations = []
        statements = []
        for group_copies in (True, False):
            resolver = BulkResolver(
                network, explicit_users=BELIEF_USERS, group_copies=group_copies
            )
            resolver.load_beliefs(rows)
            report = resolver.run()
            statements.append(report.statements)
            relations.append(serialized_relation(resolver.store))
            resolver.store.close()
        assert relations[0] == relations[1]
        assert statements[0] <= statements[1]

    def test_fanout_network_grouped_is_fewer_statements_same_relation(self, serialized_relation):
        tn = TrustNetwork()
        for child in ("b", "c", "d", "e"):
            tn.add_trust(child, "a", priority=1)
        tn.add_trust("f", "b", priority=1)
        tn.add_trust("g", "b", priority=1)
        rows = [("a", f"k{i}", f"v{i}") for i in range(10)]
        relations = []
        statements = []
        for group_copies in (True, False):
            resolver = BulkResolver(
                tn, explicit_users=["a"], group_copies=group_copies
            )
            resolver.load_beliefs(rows)
            report = resolver.run()
            statements.append(report.statements)
            relations.append(serialized_relation(resolver.store))
            resolver.store.close()
        assert relations[0] == relations[1]
        # 6 single-child copies collapse to 2 grouped ones (parents a and b).
        assert statements == [2, 6]

    def test_skeptic_grouped_matches_ungrouped(self, serialized_relation):
        tn = TrustNetwork()
        tn.add_trust("p", "source", priority=2)
        tn.add_trust("r", "source", priority=2)
        tn.add_trust("p2", "p", priority=2)
        tn.add_trust("q", "filter", priority=2)
        tn.add_trust("q", "p", priority=1)
        relations = []
        for group_copies in (True, False):
            resolver = SkepticBulkResolver(
                tn,
                positive_users=["source"],
                negative_constraints={"filter": ["v0"]},
                group_copies=group_copies,
            )
            resolver.load_beliefs(
                [("source", "k0", "v0"), ("source", "k1", "v1")]
            )
            resolver.run()
            relations.append(serialized_relation(resolver.store))
            resolver.store.close()
        assert relations[0] == relations[1]


class TestSkepticBulkResolver:
    def test_blocked_value_becomes_bottom(self):
        tn = TrustNetwork()
        tn.add_trust("p", "source", priority=2)
        tn.add_trust("p", "q", priority=1)
        tn.add_trust("q", "filter", priority=2)
        tn.add_trust("q", "p", priority=1)
        resolver = SkepticBulkResolver(
            tn, positive_users=["source"], negative_constraints={"filter": ["v1"]}
        )
        resolver.load_beliefs([("source", "k0", "v1"), ("source", "k1", "v2")])
        resolver.run()
        # k0 carries the rejected value: q reports ⊥; k1 passes through.
        assert resolver.possible_values("q", "k0") == frozenset({BOTTOM_VALUE})
        assert resolver.possible_values("p", "k0") == frozenset({"v1"})
        assert resolver.possible_values("q", "k1") == frozenset({"v2"})
        assert resolver.bottom_value() == BOTTOM_VALUE
        resolver.store.close()

    def test_matches_algorithm2_possible_positives(self):
        tn = TrustNetwork()
        tn.add_trust("p", "source", priority=2)
        tn.add_trust("p", "q", priority=1)
        tn.add_trust("q", "filter", priority=2)
        tn.add_trust("q", "p", priority=1)
        value = "measured"
        per_object = tn.copy()
        per_object.set_explicit_belief("source", value)
        per_object.set_explicit_belief("filter", BeliefSet.from_negatives(["other"]))
        expected = resolve_skeptic(per_object)

        resolver = SkepticBulkResolver(
            tn, positive_users=["source"], negative_constraints={"filter": ["other"]}
        )
        resolver.load_beliefs([("source", "k0", value)])
        resolver.run()
        for user in ("p", "q"):
            sql_positive = {
                v for v in resolver.possible_values(user, "k0") if v != BOTTOM_VALUE
            }
            assert sql_positive == set(map(str, expected.possible_positive_values(user)))
        resolver.store.close()
