"""Tests for the pipelined stage scheduler (dependency work-queue replay).

The acceptance property of the scheduler refactor: replaying a plan's DAG
through the pipelined work-queue — serially, on worker threads, or shard by
shard without cross-shard barriers — must produce a relation byte-identical
to the sequential plan-order replay, on hundreds of randomized networks,
for shard counts {1, 2, 4} and for sqlite-file and DB-API backends.
"""

from __future__ import annotations

import random
import sqlite3
import threading

import pytest

from repro.bulk.backends import DbApiBackend, SqliteFileBackend
from repro.bulk.executor import (
    BulkResolver,
    ConcurrentBulkResolver,
    SkepticBulkResolver,
    _replay_step,
    replay_dag,
)
from repro.bulk.store import PossStore, ShardedPossStore
from repro.core.errors import BulkProcessingError
from repro.core.network import TrustNetwork
from repro.workloads.bulkload import BELIEF_USERS, figure19_network, generate_objects


def _random_network(rng, max_users: int = 9):
    """A random trust network plus the users carrying explicit beliefs."""
    n = rng.randint(4, max_users)
    users = [f"u{i}" for i in range(n)]
    tn = TrustNetwork()
    for user in users:
        tn.add_user(user)
    n_explicit = rng.randint(1, 2)
    explicit = users[:n_explicit]
    for child in users[n_explicit:]:
        parents = rng.sample([u for u in users if u != child], rng.randint(1, 2))
        priorities = (
            rng.sample([1, 2], len(parents))
            if rng.random() < 0.7
            else [1] * len(parents)
        )
        for parent, priority in zip(parents, priorities):
            tn.add_trust(child, parent, priority=priority)
    return tn, explicit


def _random_rows(rng, explicit, n_objects):
    rows = []
    for index in range(n_objects):
        key = f"k{index}"
        for user in explicit:
            rows.append((user, key, rng.choice(["v1", "v2", "v3"])))
    return rows


def _sequential_reference(plan, rows, serialized_relation):
    """The relation produced by a plain plan-order sequential replay."""
    store = PossStore()
    store.insert_explicit_beliefs(rows)
    with store.transaction():
        for step in plan.steps:
            _replay_step(store, step)
    expected = serialized_relation(store)
    store.close()
    return expected


def _file_backends(tmp_path, tag, count):
    return [
        SqliteFileBackend(str(tmp_path / f"{tag}-shard{i}.db")) for i in range(count)
    ]


def _dbapi_backends(tmp_path, tag, count):
    def factory(path):
        return lambda: sqlite3.connect(path, check_same_thread=False)

    return [
        DbApiBackend(
            factory(str(tmp_path / f"{tag}-dbshard{i}.db")),
            name="dbapi-sqlite",
            supports_concurrent_statements=sqlite3.threadsafety == 3,
        )
        for i in range(count)
    ]


class TestPipelinedEquivalenceProperty:
    """Acceptance property: the pipelined scheduler is byte-identical to
    sequential replay on >= 200 random networks, shard counts {1, 2, 4},
    through in-memory sqlite, sqlite-file and DB-API backends."""

    NETWORKS = 200
    SHARD_COUNTS = (1, 2, 4)
    BACKEND_KINDS = ("memory", "file", "dbapi")

    def test_pipelined_replay_is_byte_identical_over_random_networks(
        self, tmp_path, serialized_relation
    ):
        rng = random.Random(20100608)
        for trial in range(self.NETWORKS):
            network, explicit = _random_network(rng)
            rows = _random_rows(rng, explicit, n_objects=rng.randint(2, 5))
            shards = self.SHARD_COUNTS[trial % len(self.SHARD_COUNTS)]
            kind = self.BACKEND_KINDS[(trial // 3) % len(self.BACKEND_KINDS)]
            if kind == "memory":
                store = ShardedPossStore(shards)
            elif kind == "file":
                store = ShardedPossStore(
                    shards, backends=_file_backends(tmp_path, f"t{trial}", shards)
                )
            else:
                store = ShardedPossStore(
                    shards, backends=_dbapi_backends(tmp_path, f"t{trial}", shards)
                )
            resolver = ConcurrentBulkResolver(
                network, store=store, explicit_users=explicit
            )
            expected = _sequential_reference(
                resolver.plan, rows, serialized_relation
            )
            resolver.load_beliefs(rows)
            report = resolver.run()
            assert serialized_relation(store) == expected, (
                f"trial {trial}: pipelined replay diverged "
                f"(shards={shards}, backend={kind})"
            )
            assert report.scheduler == "pipelined"
            assert report.statements_per_shard() == resolver.plan.statement_count()
            store.close()

    def test_single_store_worker_replay_is_byte_identical(
        self, tmp_path, serialized_relation
    ):
        """Worker threads on one sqlite-file / DB-API store stay identical."""
        rng = random.Random(4242)
        for trial in range(40):
            network, explicit = _random_network(rng)
            rows = _random_rows(rng, explicit, n_objects=3)
            if trial % 2:
                backend = SqliteFileBackend(str(tmp_path / f"w{trial}.db"))
            else:
                path = str(tmp_path / f"w{trial}-db.db")
                backend = DbApiBackend(
                    lambda path=path: sqlite3.connect(path, check_same_thread=False),
                    name="dbapi-sqlite",
                    supports_concurrent_statements=sqlite3.threadsafety == 3,
                )
            store = PossStore(backend=backend)
            resolver = BulkResolver(
                network, store=store, explicit_users=explicit, workers=3
            )
            expected = _sequential_reference(
                resolver.plan, rows, serialized_relation
            )
            resolver.load_beliefs(rows)
            report = resolver.run()
            assert serialized_relation(store) == expected, f"trial {trial}"
            assert report.workers == 3
            assert report.statements == resolver.plan.statement_count()
            assert report.transactions == 1
            store.close()


class TestSchedulerModes:
    def test_memory_store_degrades_to_one_worker(self):
        resolver = BulkResolver(
            figure19_network(), explicit_users=BELIEF_USERS, workers=4
        )
        resolver.load_beliefs(generate_objects(10, seed=3))
        report = resolver.run()
        # The in-memory connection cannot move across threads.
        assert report.workers == 1
        assert report.scheduler == "pipelined"
        assert report.dag_stages == resolver.dag.stage_count
        resolver.store.close()

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(BulkProcessingError):
            BulkResolver(figure19_network(), scheduler="chaotic")
        with pytest.raises(BulkProcessingError):
            BulkResolver(figure19_network(), workers=0)

    def test_stage_barrier_single_store_matches_pipelined(self, serialized_relation):
        rows = generate_objects(15, seed=8)
        relations = {}
        for scheduler in ("pipelined", "stage-barrier"):
            resolver = BulkResolver(
                figure19_network(),
                explicit_users=BELIEF_USERS,
                scheduler=scheduler,
            )
            resolver.load_beliefs(rows)
            report = resolver.run()
            assert report.scheduler == scheduler
            if scheduler == "stage-barrier":
                # A barrier schedule never runs ahead of a stage boundary.
                assert report.stages_overlapped == 0
            relations[scheduler] = serialized_relation(resolver.store)
            resolver.store.close()
        assert relations["pipelined"] == relations["stage-barrier"]

    def test_sharded_stage_barrier_matches_pipelined(
        self, tmp_path, serialized_relation
    ):
        rows = generate_objects(20, seed=13)
        relations = {}
        for scheduler in ("pipelined", "stage-barrier"):
            store = ShardedPossStore(
                2, backends=_file_backends(tmp_path, scheduler, 2)
            )
            resolver = ConcurrentBulkResolver(
                figure19_network(),
                store=store,
                explicit_users=BELIEF_USERS,
                scheduler=scheduler,
            )
            resolver.load_beliefs(rows)
            report = resolver.run()
            assert report.scheduler == scheduler
            if scheduler == "stage-barrier":
                assert report.stages_overlapped == 0
            relations[scheduler] = serialized_relation(store)
            store.close()
        assert relations["pipelined"] == relations["stage-barrier"]

    def test_sharded_barrier_failure_rolls_back_all_shards(self, tmp_path):
        """A shard dying mid-stage must abort the barrier (no deadlock) and
        roll back every shard."""
        store = ShardedPossStore(2, backends=_file_backends(tmp_path, "fail", 2))
        resolver = ConcurrentBulkResolver(
            figure19_network(),
            store=store,
            explicit_users=BELIEF_USERS,
            scheduler="stage-barrier",
        )
        resolver.load_beliefs(generate_objects(10, seed=4))
        before = [sorted(shard.possible_table()) for shard in store.shards]
        victim = store.shards[1]

        def failing_copy(parent, children):
            raise BulkProcessingError("shard 1 lost its engine mid-stage")

        victim.copy_to_children = failing_copy
        with pytest.raises(BulkProcessingError, match="lost its engine"):
            resolver.run()
        assert [sorted(shard.possible_table()) for shard in store.shards] == before
        assert not store.in_transaction
        store.close()

    def test_worker_failure_rolls_back_the_run(self, tmp_path):
        store = PossStore(backend=SqliteFileBackend(str(tmp_path / "boom.db")))
        resolver = BulkResolver(
            figure19_network(), store=store, explicit_users=BELIEF_USERS, workers=2
        )
        resolver.load_beliefs(generate_objects(10, seed=5))
        before = sorted(store.possible_table())
        original = store.copy_to_children
        calls = []

        def failing_copy(parent, children):
            calls.append(parent)
            if len(calls) >= 3:
                raise BulkProcessingError("worker statement failed")
            return original(parent, children)

        store.copy_to_children = failing_copy
        with pytest.raises(BulkProcessingError, match="worker statement"):
            resolver.run()
        assert sorted(store.possible_table()) == before
        assert not store.in_transaction
        store.close()

    def test_skeptic_resolver_shares_the_scheduler(self, serialized_relation):
        tn = TrustNetwork()
        tn.add_trust("p", "source", priority=2)
        tn.add_trust("p", "q", priority=1)
        tn.add_trust("q", "filter", priority=2)
        tn.add_trust("q", "p", priority=1)
        rows = [("source", "k0", "v1"), ("source", "k1", "v2")]
        relations = {}
        for scheduler in ("pipelined", "stage-barrier"):
            resolver = SkepticBulkResolver(
                tn,
                positive_users=["source"],
                negative_constraints={"filter": ["v1"]},
                scheduler=scheduler,
            )
            resolver.load_beliefs(rows)
            report = resolver.run()
            assert report.scheduler == scheduler
            assert report.dag_stages == resolver.dag.stage_count
            relations[scheduler] = serialized_relation(resolver.store)
            resolver.store.close()
        assert relations["pipelined"] == relations["stage-barrier"]


class TestReportInstrumentation:
    """Satellite: phase_seconds double-counts nothing under the scheduler."""

    def test_phase_seconds_sum_to_wall_time_on_serial_replay(self):
        """copy + flood must account for (almost all of) the run's wall
        time: the serial scheduler times each statement exactly once, so the
        two phases plus loop overhead equal the elapsed wall clock."""
        resolver = BulkResolver(figure19_network(), explicit_users=BELIEF_USERS)
        resolver.load_beliefs(generate_objects(2_000, seed=11))
        report = resolver.run()
        phased = sum(report.phase_seconds.values())
        assert set(report.phase_seconds) == {"copy", "flood"}
        # Never more than the wall clock (no double counting) ...
        assert phased <= report.elapsed_seconds
        # ... and never less than 80% of it (nothing material untimed).
        assert phased >= 0.8 * report.elapsed_seconds, report
        resolver.store.close()

    def test_stages_overlapped_is_surfaced_and_counts_reordering(self, tmp_path):
        """A sharded pipelined run with an artificially slow shard must
        observe genuine stage overlap: the fast shard reaches later stages
        while the slow shard is still working through stage 0."""
        store = ShardedPossStore(2, backends=_file_backends(tmp_path, "slow", 2))
        resolver = ConcurrentBulkResolver(
            figure19_network(), store=store, explicit_users=BELIEF_USERS
        )
        assert resolver.dag.stage_count >= 2
        resolver.load_beliefs(generate_objects(30, seed=2))
        slow_shard = store.shards[0]
        original = slow_shard.copy_to_children
        release = threading.Event()

        def stalled_copy(parent, children):
            release.wait(timeout=5.0)
            return original(parent, children)

        slow_shard.copy_to_children = stalled_copy
        done = {}

        def run():
            done["report"] = resolver.run()

        thread = threading.Thread(target=run)
        thread.start()
        # Give the fast shard time to run ahead, then release the slow one.
        import time as _time

        _time.sleep(0.1)
        release.set()
        thread.join(timeout=30)
        report = done["report"]
        assert report.stages_overlapped > 0
        assert report.scheduler == "pipelined"
        store.close()


class TestReplayDagDirect:
    def test_replay_dag_matches_plan_statement_count(self):
        resolver = BulkResolver(figure19_network(), explicit_users=BELIEF_USERS)
        resolver.load_beliefs(generate_objects(5, seed=1))
        store = resolver.store
        before = store.bulk_statements
        with store.transaction():
            rows, phases = replay_dag(store, resolver.dag)
        assert store.bulk_statements - before == resolver.plan.statement_count()
        assert rows > 0
        assert set(phases) == {"copy", "flood"}
        store.close()
