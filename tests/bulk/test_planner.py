"""Tests for the bulk resolution planner (Section 4 assumptions and steps)."""

from __future__ import annotations

import pytest

from repro.bulk.planner import (
    CopyStep,
    FloodStep,
    GroupedCopyStep,
    plan_resolution,
    plan_skeptic_resolution,
)
from repro.core.errors import BulkProcessingError
from repro.core.network import TrustNetwork


class TestPlanResolution:
    def test_chain_produces_copy_steps_only(self):
        tn = TrustNetwork()
        tn.add_trust("b", "a", priority=1)
        tn.add_trust("c", "b", priority=1)
        plan = plan_resolution(tn, explicit_users=["a"])
        assert all(isinstance(step, GroupedCopyStep) for step in plan.steps)
        assert plan.copied_children() == ["b", "c"]
        # Distinct parents (a and b), so grouping cannot shrink the chain.
        assert plan.statement_count() == 2

    def test_ungrouped_plan_keeps_single_copy_steps(self):
        tn = TrustNetwork()
        tn.add_trust("b", "a", priority=1)
        tn.add_trust("c", "b", priority=1)
        plan = plan_resolution(tn, explicit_users=["a"], group_copies=False)
        assert not plan.grouped
        assert all(isinstance(step, CopyStep) for step in plan.steps)
        assert [step.child for step in plan.copy_steps] == ["b", "c"]
        assert plan.statement_count() == 2

    def test_shared_parent_copies_collapse_into_one_statement(self):
        tn = TrustNetwork()
        for child in ("b", "c", "d"):
            tn.add_trust(child, "a", priority=1)
        grouped = plan_resolution(tn, explicit_users=["a"])
        ungrouped = plan_resolution(tn, explicit_users=["a"], group_copies=False)
        assert ungrouped.statement_count() == 3
        assert grouped.statement_count() == 1
        (step,) = grouped.steps
        assert isinstance(step, GroupedCopyStep)
        assert step.parent == "a"
        assert set(step.children) == {"b", "c", "d"}

    def test_grouping_roundtrip_preserves_child_order(self):
        tn = TrustNetwork()
        for child in ("b", "c", "d"):
            tn.add_trust(child, "a", priority=1)
        tn.add_trust("e", "b", priority=1)
        ungrouped = plan_resolution(tn, explicit_users=["a"], group_copies=False)
        grouped = ungrouped.grouped_copies()
        assert grouped.grouped
        assert grouped.ungrouped_copies().steps == ungrouped.steps
        assert grouped.copied_children() != []
        assert sorted(map(str, grouped.copied_children())) == sorted(
            map(str, ungrouped.copied_children())
        )

    def test_cycle_produces_flood_step(self, oscillator_network):
        plan = plan_resolution(oscillator_network)
        floods = plan.flood_steps
        assert len(floods) == 1
        assert set(floods[0].members) == {"x1", "x2"}
        assert set(floods[0].parents) == {"x3", "x4"}

    def test_explicit_users_default_to_network_beliefs(self, oscillator_network):
        plan = plan_resolution(oscillator_network)
        assert plan.explicit_users == frozenset({"x3", "x4"})

    def test_unknown_explicit_user_rejected(self, oscillator_network):
        with pytest.raises(BulkProcessingError):
            plan_resolution(oscillator_network, explicit_users=["nobody"])

    def test_unreachable_users_are_not_planned(self):
        tn = TrustNetwork()
        tn.add_trust("b", "a", priority=1)
        tn.add_trust("d", "c", priority=1)  # c has no belief
        plan = plan_resolution(tn, explicit_users=["a"])
        assert plan.copied_children() == ["b"]

    def test_statement_count_independent_of_values(self, oscillator_network):
        plan = plan_resolution(oscillator_network)
        # 1 flood step over a 2-node component -> 1 multi-member statement.
        assert plan.statement_count() == 1


class TestSkepticPlan:
    def test_blocked_values_recorded_for_forced_members(self):
        tn = TrustNetwork()
        tn.add_trust("p", "source", priority=2)
        tn.add_trust("p", "q", priority=1)
        tn.add_trust("q", "filter", priority=2)
        tn.add_trust("q", "p", priority=1)
        plan = plan_skeptic_resolution(
            tn, positive_users=["source"], negative_constraints={"filter": ["a"]}
        )
        floods = plan.flood_steps
        assert floods, "the cycle must be planned as a flood step"
        blocked = floods[-1].blocked_map()
        assert blocked.get("q") == ("a",)
        assert "p" not in blocked

    def test_positive_user_with_constraint_rejected(self):
        tn = TrustNetwork()
        tn.add_trust("x", "a", priority=1)
        with pytest.raises(BulkProcessingError):
            plan_skeptic_resolution(
                tn, positive_users=["a"], negative_constraints={"a": ["v"]}
            )

    def test_plan_without_constraints_matches_plain_plan_shape(self, oscillator_network):
        plain = plan_resolution(oscillator_network)
        skeptic = plan_skeptic_resolution(
            oscillator_network,
            positive_users=["x3", "x4"],
            negative_constraints={},
        )
        assert len(plain.steps) == len(skeptic.steps)
        assert plain.statement_count() == skeptic.statement_count()

    def test_skeptic_grouping_matches_ungrouped_children(self):
        tn = TrustNetwork()
        tn.add_trust("p", "source", priority=2)
        tn.add_trust("r", "source", priority=2)
        tn.add_trust("s", "p", priority=2)
        grouped = plan_skeptic_resolution(
            tn, positive_users=["source"], negative_constraints={}
        )
        ungrouped = plan_skeptic_resolution(
            tn, positive_users=["source"], negative_constraints={}, group_copies=False
        )
        assert grouped.grouped and not ungrouped.grouped
        assert sorted(map(str, grouped.copied_children())) == sorted(
            map(str, ungrouped.copied_children())
        )
        assert grouped.statement_count() <= ungrouped.statement_count()
