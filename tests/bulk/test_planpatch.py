"""Tests for incremental plan maintenance (bulk/planpatch.py).

The contract: after any structural (or explicit-set) mutation, the patched
plan must produce a relation byte-identical to a from-scratch re-plan of
the mutated network, and must still lower to a valid dependency DAG.
"""

from __future__ import annotations

import random

import pytest

from repro.bulk.compile import CompiledPlan, compile_plan
from repro.bulk.executor import _execute_region, _PhaseClock, _replay_step
from repro.bulk.planner import (
    FloodStep,
    plan_dag,
    plan_resolution,
    plan_skeptic_resolution,
    step_io,
)
from repro.bulk.planpatch import PlanPatch, patch_plan, splice_compiled
from repro.bulk.store import PossStore
from repro.core.errors import BulkProcessingError
from repro.core.network import TrustNetwork


def _random_belief_network(rng, max_users: int = 10):
    """A random network whose explicit beliefs live on the network itself."""
    n = rng.randint(4, max_users)
    users = [f"u{i}" for i in range(n)]
    tn = TrustNetwork()
    for user in users:
        tn.add_user(user)
    n_explicit = rng.randint(1, 2)
    for child in users[n_explicit:]:
        parents = rng.sample([u for u in users if u != child], rng.randint(1, 2))
        priorities = (
            rng.sample([1, 2], len(parents))
            if rng.random() < 0.7
            else [1] * len(parents)
        )
        for parent, priority in zip(parents, priorities):
            tn.add_trust(child, parent, priority=priority)
    for user in users[:n_explicit]:
        tn.set_explicit_belief(user, rng.choice(["v1", "v2", "v3"]))
    return tn


def _belief_rows(network, rng, n_objects=3):
    rows = []
    for index in range(n_objects):
        key = f"k{index}"
        for user, belief in network.explicit_beliefs.items():
            if belief.has_positive:
                rows.append((user, key, rng.choice(["v1", "v2", "v3"])))
    return rows


def _replay(plan, rows, serialized_relation):
    store = PossStore()
    store.insert_explicit_beliefs(rows)
    with store.transaction():
        for step in plan.steps:
            _replay_step(store, step)
    relation = serialized_relation(store)
    store.close()
    return relation


def _mutate_randomly(network, rng):
    """Apply one random structural/explicit mutation; returns (touched, removed)."""
    explicit = {
        user
        for user, belief in network.explicit_beliefs.items()
        if belief.has_positive
    }
    users = sorted(network.users, key=str)
    incoming = network.incoming_map()
    choices = []
    addable = [
        u for u in users if u not in explicit and len(incoming.get(u, ())) < 2
    ]
    if addable:
        choices.append("add_trust")
    removable_edges = [
        e for e in network.mappings if e.child not in explicit
    ]
    if removable_edges:
        choices.append("remove_trust")
        choices.append("set_priority")
    removable_users = [u for u in users if u not in explicit]
    if removable_users and len(users) > 3:
        choices.append("remove_user")
    roots = [
        u for u in users if not incoming.get(u, ()) and u not in explicit
    ]
    if roots:
        choices.append("set_belief")
    if len(explicit) > 1:
        choices.append("remove_belief")
    kind = rng.choice(choices)

    if kind == "add_trust":
        child = rng.choice(addable)
        parents = {e.parent for e in incoming.get(child, ())}
        candidates = [u for u in users if u != child and u not in parents]
        if not candidates:
            return set(), set()
        network.add_trust(child, rng.choice(candidates), priority=rng.choice([1, 2, 3]))
        return {child}, set()
    if kind == "remove_trust":
        edge = rng.choice(removable_edges)
        network.remove_trust(edge.child, edge.parent)
        return {edge.child}, set()
    if kind == "set_priority":
        edge = rng.choice(removable_edges)
        parallel = [
            e
            for e in incoming.get(edge.child, ())
            if e.parent == edge.parent
        ]
        if len(parallel) > 1:
            return set(), set()
        network.set_priority(edge.child, edge.parent, rng.choice([1, 2, 3, 4]))
        return {edge.child}, set()
    if kind == "remove_user":
        user = rng.choice(removable_users)
        children = set(network.children(user))
        network.remove_user(user)
        return children, {user}
    if kind == "set_belief":
        user = rng.choice(roots)
        network.set_explicit_belief(user, rng.choice(["v1", "v2", "v3"]))
        return {user}, set()
    user = rng.choice(sorted(explicit, key=str))
    network.remove_explicit_belief(user)
    return {user}, set()


class TestPatchPlanProperty:
    """Patched plans must match fresh re-plans on randomized delta streams."""

    TRIALS = 120
    DELTAS_PER_TRIAL = 4

    def test_patched_plan_matches_fresh_replan(self, serialized_relation):
        rng = random.Random(1003)
        checked = 0
        for trial in range(self.TRIALS):
            network = _random_belief_network(rng)
            plan = plan_resolution(network)
            for _ in range(self.DELTAS_PER_TRIAL):
                touched, removed = _mutate_randomly(network, rng)
                if not touched and not removed:
                    continue
                patch = patch_plan(plan, network, touched, removed=removed)
                assert isinstance(patch, PlanPatch)
                plan = patch.plan
                fresh = plan_resolution(network)
                # The patched plan must lower to a valid (causal) DAG ...
                dag = plan_dag(plan)
                assert len(dag.nodes) == len(plan.steps)
                # ... close exactly the users the fresh plan closes ...
                def closers(p):
                    return {str(u) for s in p.steps for u in step_io(s)[1]}

                assert closers(plan) == closers(fresh), f"trial {trial}"
                # ... and produce the byte-identical relation.
                rows = _belief_rows(network, rng)
                if rows:
                    assert _replay(plan, rows, serialized_relation) == _replay(
                        fresh, rows, serialized_relation
                    ), f"trial {trial}"
                checked += 1
        assert checked >= self.TRIALS  # the stream generator never stalls


def _run_compiled(compiled, rows, serialized_relation):
    """The relation produced by executing a compiled plan region by region."""
    store = PossStore()
    store.insert_explicit_beliefs(rows)
    with store.transaction():
        for region in compiled.regions:
            _execute_region(store, region, _PhaseClock())
    relation = serialized_relation(store)
    store.close()
    return relation


class TestSpliceCompiledProperty:
    """Patched-then-spliced compiled plans must execute identically to a
    fresh re-plan-and-compile, across randomized delta streams."""

    TRIALS = 100
    DELTAS_PER_TRIAL = 4

    def test_spliced_compilation_matches_fresh_compile(self, serialized_relation):
        rng = random.Random(2026)
        checked = 0
        reused_regions = 0
        for trial in range(self.TRIALS):
            network = _random_belief_network(rng)
            plan = plan_resolution(network)
            compiled = compile_plan(plan)
            for _ in range(self.DELTAS_PER_TRIAL):
                touched, removed = _mutate_randomly(network, rng)
                if not touched and not removed:
                    continue
                patch = patch_plan(plan, network, touched, removed=removed)
                plan = patch.plan
                spliced = splice_compiled(compiled, patch)
                assert isinstance(spliced, CompiledPlan)
                assert spliced.plan is patch.plan
                # Regions partition the patched step list contiguously.
                flattened = [s for region in spliced.regions for s in region.steps]
                assert flattened == list(plan.steps), f"trial {trial}"
                reused_regions += sum(
                    1 for region in spliced.regions if region in compiled.regions
                )
                compiled = spliced
                fresh = compile_plan(plan)
                rows = _belief_rows(network, rng)
                if rows:
                    assert _run_compiled(
                        spliced, rows, serialized_relation
                    ) == _run_compiled(fresh, rows, serialized_relation), (
                        f"trial {trial}"
                    )
                    checked += 1
        assert checked >= self.TRIALS
        # The splice must actually reuse work, not recompile everything.
        assert reused_regions > self.TRIALS // 2


class TestSpliceCompiledUnits:
    def test_untouched_leading_region_is_reused_by_identity(self):
        tn = TrustNetwork()
        tn.add_trust("b", "a", priority=1)
        tn.add_trust("c", "b", priority=1)
        tn.add_trust("p", "c", priority=1)
        tn.add_trust("p", "q", priority=1)
        tn.add_trust("q", "p", priority=1)
        tn.add_trust("e", "d", priority=1)
        tn.set_explicit_belief("a", "v")
        tn.set_explicit_belief("d", "w")
        plan = plan_resolution(tn)
        compiled = compile_plan(plan)
        # Touch only the d-subtree: every region before the divergence
        # point transfers without recompilation (same object).
        tn.add_trust("f", "e", priority=1)
        patch = patch_plan(plan, tn, {"f"})
        spliced = splice_compiled(compiled, patch)
        assert spliced.regions[0] is compiled.regions[0]

    def test_divergent_plan_recompiles_the_suffix(self):
        tn = TrustNetwork()
        tn.add_trust("b", "a", priority=1)
        tn.add_trust("c", "b", priority=1)
        tn.set_explicit_belief("a", "v")
        plan = plan_resolution(tn)
        compiled = compile_plan(plan)
        # Touching the head of the chain invalidates every step, so the
        # splice keeps nothing and recompiles from the start.
        tn.set_explicit_belief("b", "w")
        patch = patch_plan(plan, tn, {"b"})
        spliced = splice_compiled(compiled, patch)
        assert all(
            region not in compiled.regions for region in spliced.regions
        )
        flattened = [s for region in spliced.regions for s in region.steps]
        assert flattened == list(patch.plan.steps)


class TestPatchPlanUnits:
    def test_untouched_subtree_steps_are_kept(self):
        tn = TrustNetwork()
        tn.add_trust("b", "a", priority=1)
        tn.add_trust("c", "b", priority=1)
        tn.add_trust("e", "d", priority=1)
        tn.set_explicit_belief("a", "v")
        tn.set_explicit_belief("d", "w")
        plan = plan_resolution(tn)
        before = len(plan.steps)
        # Touch only the d-subtree: the a-subtree's steps must survive.
        tn.add_trust("f", "e", priority=1)
        patch = patch_plan(plan, tn, {"f"})
        assert patch.kept_steps == before  # a→b→c and d→e all kept
        assert patch.added_steps >= 1
        assert patch.region_size == 1
        closed = {
            str(u)
            for s in patch.plan.steps
            for u in step_io(s)[1]
        }
        assert "f" in closed

    def test_grouped_copy_is_split_at_the_region_boundary(self):
        tn = TrustNetwork()
        tn.add_trust("b", "a", priority=1)
        tn.add_trust("c", "a", priority=1)
        tn.set_explicit_belief("a", "v")
        plan = plan_resolution(tn)  # one grouped copy a -> (b, c)
        assert len(plan.steps) == 1
        tn.add_trust("c", "x", priority=5)
        tn.set_explicit_belief("x", "w")
        patch = patch_plan(plan, tn, {"c", "x"})
        kept = patch.plan.steps[0]
        assert kept.children == ("b",)  # c was carved out of the group
        fresh = plan_resolution(tn)
        assert patch.plan.statement_count() >= fresh.statement_count()

    def test_remove_user_drops_its_steps(self):
        tn = TrustNetwork()
        tn.add_trust("b", "a", priority=1)
        tn.add_trust("c", "b", priority=1)
        tn.set_explicit_belief("a", "v")
        plan = plan_resolution(tn)
        children = set(tn.children("b"))
        tn.remove_user("b")
        patch = patch_plan(plan, tn, children, removed={"b"})
        closed = {
            str(u)
            for s in patch.plan.steps
            for u in step_io(s)[1]
        }
        assert "b" not in closed
        assert closed == {str(u) for s in plan_resolution(tn).steps
                          for u in step_io(s)[1]}

    def test_skeptic_plans_are_rejected(self):
        tn = TrustNetwork()
        tn.add_trust("p", "source", priority=2)
        tn.add_trust("p", "filter", priority=1)
        plan = plan_skeptic_resolution(
            tn, positive_users=["source"], negative_constraints={"filter": ["v1"]}
        )
        if any(isinstance(s, FloodStep) and s.blocked for s in plan.steps):
            with pytest.raises(BulkProcessingError, match="Skeptic"):
                patch_plan(plan, tn, {"p"})
        else:  # pragma: no cover - plan shape changed
            pytest.skip("plan carries no blocked flood step")

    def test_covering_flood_detection(self):
        """A touched set that does not cover the delta is rejected instead
        of silently producing a half-patched plan."""
        tn = TrustNetwork()
        tn.add_trust("b", "a", priority=1)
        tn.add_trust("c", "b", priority=1)
        tn.add_trust("b", "c", priority=1)
        tn.set_explicit_belief("a", "v")
        plan = plan_resolution(tn)
        # Break the cycle: b no longer trusts c (the edge c -> b is gone).
        # The correct touched set is {b} (the child of the removed edge);
        # a wrong one — {c} — leaves half the flood component outside the
        # region, which the patch must reject loudly.
        tn.remove_trust("b", "c")
        with pytest.raises(BulkProcessingError, match="straddles"):
            patch_plan(plan, tn, {"c"})
