"""Connection pools and connection-per-worker compiled execution.

Three layers under test:

* :class:`~repro.bulk.backends.ConnectionPool` itself — bounded checkout,
  blocking exhaustion, loud leak detection, drain-on-close;
* the per-backend capability surface — WAL pragmas on pooled sqlite-file
  connections, ``max_bind_params`` probe memoization, the poolability
  flags;
* the pooled executor path — ``pool_workers=N`` compiled runs commit one
  transaction per region on per-worker connections and stay byte-identical
  to the sequential single-connection replay, all-or-nothing included.
"""

from __future__ import annotations

import random
import sqlite3
import threading
import time

import pytest

from repro.bulk.backends import (
    DbApiBackend,
    SqliteFileBackend,
    SqliteMemoryBackend,
)
from repro.bulk.compile import RegionLimits, compile_plan
from repro.bulk.executor import BulkResolver
from repro.bulk.planner import plan_resolution
from repro.bulk.store import PossStore, ShardedPossStore
from repro.core.errors import BackendUnavailable, BulkProcessingError
from repro.workloads.bulkload import multi_chain_network

from tests.bulk.test_compiled import _random_network, _random_rows


def _file_store(tmp_path, name="pool.db") -> PossStore:
    return PossStore(backend=SqliteFileBackend(str(tmp_path / name)))


class TestConnectionPool:
    """The pool protocol: bounded, blocking, leak-detected."""

    def test_checkout_checkin_roundtrip(self, tmp_path):
        backend = SqliteFileBackend(str(tmp_path / "p.db"))
        pool = backend.create_pool(size=2)
        first = pool.checkout()
        assert pool.in_use == 1
        pool.checkin(first)
        assert pool.in_use == 0
        # The idle connection is reused, not reopened.
        assert pool.checkout() is first
        pool.checkin(first)
        pool.close()

    def test_exhaustion_blocks_instead_of_over_allocating(self, tmp_path):
        backend = SqliteFileBackend(str(tmp_path / "p.db"))
        pool = backend.create_pool(size=1, timeout=5.0)
        held = pool.checkout()
        results = []

        def blocked_waiter():
            with pool.connection() as connection:
                results.append(connection)

        thread = threading.Thread(target=blocked_waiter)
        thread.start()
        time.sleep(0.05)
        # The second checkout must wait on the bound, never open a second
        # connection past the pool size.
        assert not results
        assert pool.in_use == 1
        pool.checkin(held)
        thread.join(timeout=5.0)
        assert results == [held]
        pool.close()

    def test_exhaustion_times_out_with_a_diagnosis(self, tmp_path):
        backend = SqliteFileBackend(str(tmp_path / "p.db"))
        pool = backend.create_pool(size=1, timeout=0.05)
        held = pool.checkout()
        with pytest.raises(BackendUnavailable, match="pool exhausted"):
            pool.checkout()
        pool.checkin(held)
        pool.close()

    def test_context_manager_checks_in_on_exception(self, tmp_path):
        backend = SqliteFileBackend(str(tmp_path / "p.db"))
        pool = backend.create_pool(size=1)
        with pytest.raises(RuntimeError):
            with pool.connection():
                raise RuntimeError("worker died")
        assert pool.in_use == 0
        # The connection came back: an immediate re-checkout succeeds.
        with pool.connection():
            pass
        pool.close()

    def test_close_with_leaked_checkout_fails_loudly(self, tmp_path):
        backend = SqliteFileBackend(str(tmp_path / "p.db"))
        pool = backend.create_pool(size=2)
        leaked = pool.checkout()
        with pytest.raises(BulkProcessingError, match="still checked out"):
            pool.close()
        pool.checkin(leaked)
        pool.close()

    def test_close_drains_idle_connections(self, tmp_path):
        backend = SqliteFileBackend(str(tmp_path / "p.db"))
        pool = backend.create_pool(size=2)
        connection = pool.checkout()
        pool.checkin(connection)
        pool.close()
        # Drained: the sqlite handle is really closed.
        with pytest.raises(sqlite3.ProgrammingError):
            connection.execute("SELECT 1")
        # And a closed pool refuses further checkouts.
        with pytest.raises(BulkProcessingError, match="closed"):
            pool.checkout()

    def test_checkin_of_a_stranger_connection_is_rejected(self, tmp_path):
        backend = SqliteFileBackend(str(tmp_path / "p.db"))
        pool = backend.create_pool(size=1)
        stranger = backend.connect()
        with pytest.raises(BulkProcessingError, match="never handed out"):
            pool.checkin(stranger)
        stranger.close()
        pool.close()

    def test_pool_size_must_be_positive(self, tmp_path):
        backend = SqliteFileBackend(str(tmp_path / "p.db"))
        with pytest.raises(BulkProcessingError):
            backend.create_pool(size=0)

    def test_memory_backend_is_not_poolable(self):
        backend = SqliteMemoryBackend()
        assert not backend.supports_pooling
        with pytest.raises(BulkProcessingError):
            backend.create_pool()

    def test_sharded_store_is_never_pooled(self):
        store = ShardedPossStore(2)
        assert not store.supports_pooling
        store.close()


class TestPooledConnectionSetup:
    """Per-worker sqlite-file connections arrive WAL-tuned."""

    def test_pool_connect_enables_wal_and_autocommit(self, tmp_path):
        backend = SqliteFileBackend(str(tmp_path / "wal.db"))
        connection = backend.pool_connect()
        assert connection.isolation_level is None
        mode = connection.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode.lower() == "wal"
        sync = connection.execute("PRAGMA synchronous").fetchone()[0]
        assert int(sync) == 1  # NORMAL
        assert int(
            connection.execute("PRAGMA busy_timeout").fetchone()[0]
        ) >= 10000
        connection.close()

    def test_bind_param_probe_is_memoized(self, tmp_path):
        backend = SqliteFileBackend(str(tmp_path / "probe.db"))
        probes = []
        original = backend._probe_max_bind_params

        def counting_probe():
            probes.append(1)
            return original()

        backend._probe_max_bind_params = counting_probe
        first = backend.max_bind_params
        second = backend.max_bind_params
        assert first == second
        assert len(probes) == 1, "the probe must run once per backend instance"
        # A fresh instance probes again: memoization is per instance, not
        # a class-level cache that could leak across different servers.
        other = SqliteFileBackend(str(tmp_path / "probe2.db"))
        assert other._probed_bind_params is None
        assert other.max_bind_params == first

    def test_dbapi_backend_pools_through_its_factory(self, tmp_path):
        path = str(tmp_path / "dbapi.db")
        opened = []

        def factory():
            connection = sqlite3.connect(path, check_same_thread=False)
            opened.append(connection)
            return connection

        backend = DbApiBackend(factory, name="dbapi-sqlite", dialect="sqlite")
        assert backend.supports_pooling
        pool = backend.create_pool(size=2)
        a = pool.checkout()
        b = pool.checkout()
        assert a is not b, "each worker gets its own session"
        assert len(opened) >= 2
        pool.checkin(a)
        pool.checkin(b)
        pool.close()


def _pooled_report(tmp_path, name, pool_workers, chains=4, depth=12, **kwargs):
    network, roots = multi_chain_network(chains, depth)
    plan = plan_resolution(network, explicit_users=roots)
    limits = RegionLimits(max_copy_edges=depth, max_flood_pairs=depth)
    compiled_plan = compile_plan(plan, limits=limits)
    store = _file_store(tmp_path, name)
    resolver = BulkResolver(
        network,
        store=store,
        scheduler="compiled",
        plan=plan,
        compiled_plan=compiled_plan,
        pool_workers=pool_workers,
        **kwargs,
    )
    resolver.load_beliefs([(root, "k0", "v") for root in roots])
    report = resolver.run()
    return store, report, compiled_plan


class TestPooledExecutor:
    """pool_workers=N compiled runs: reporting, gating, env activation."""

    def test_report_carries_the_pool_gauges(self, tmp_path):
        store, report, compiled_plan = _pooled_report(tmp_path, "gauges.db", 3)
        assert report.pool_workers == 3
        assert report.workers == 3
        assert report.pool_checkouts == 3
        assert report.pool_in_use_peak == 3
        assert report.pool_wait_seconds >= 0.0
        # One transaction per region plus the belief load.
        assert report.transactions == compiled_plan.region_count + 1
        assert report.regions_compiled == compiled_plan.region_count
        store.close()

    def test_pool_lanes_never_exceed_the_region_count(self, tmp_path):
        store, report, compiled_plan = _pooled_report(
            tmp_path, "clamp.db", 16, chains=2
        )
        assert report.pool_workers == compiled_plan.region_count
        store.close()

    def test_unpooled_run_reports_zero_gauges(self, tmp_path):
        store, report, _ = _pooled_report(tmp_path, "off.db", 0)
        assert report.pool_workers == 0
        assert report.pool_checkouts == 0
        assert report.transactions == 1  # the single run-scoped transaction
        store.close()

    def test_env_variable_activates_pooling(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_WORKERS", "2")
        store, report, _ = _pooled_report(tmp_path, "env.db", None)
        assert report.pool_workers == 2
        store.close()

    def test_env_variable_loses_to_an_explicit_argument(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_POOL_WORKERS", "4")
        store, report, _ = _pooled_report(tmp_path, "explicit.db", 0)
        assert report.pool_workers == 0
        store.close()

    def test_negative_pool_workers_is_rejected(self):
        network, roots = multi_chain_network(2, 3)
        with pytest.raises(BulkProcessingError):
            BulkResolver(network, explicit_users=roots, pool_workers=-1)

    def test_memory_store_never_pools(self):
        network, roots = multi_chain_network(2, 6)
        resolver = BulkResolver(
            network,
            explicit_users=roots,
            scheduler="compiled",
            pool_workers=4,
        )
        resolver.load_beliefs([(root, "k0", "v") for root in roots])
        report = resolver.run()
        # Every in-memory connection is a private database, so the run
        # must fall back to the single shared connection.
        assert report.pool_workers == 0
        assert report.pool_checkouts == 0
        resolver.store.close()

    def test_traced_pooled_run_mirrors_the_report(self, tmp_path):
        """The trace/report equality seam extends to the pool gauges: the
        ``pool.checkouts`` metric delta must equal the report field (the
        run raises loudly otherwise), and every worker slot gets its own
        ``conn.checkout`` lane under the run span."""
        from repro.obs import Tracer

        network, roots = multi_chain_network(4, 10)
        plan = plan_resolution(network, explicit_users=roots)
        limits = RegionLimits(max_copy_edges=10, max_flood_pairs=10)
        compiled_plan = compile_plan(plan, limits=limits)
        store = _file_store(tmp_path, "traced.db")
        tracer = Tracer()
        resolver = BulkResolver(
            network,
            store=store,
            scheduler="compiled",
            plan=plan,
            compiled_plan=compiled_plan,
            pool_workers=3,
            tracer=tracer,
        )
        resolver.load_beliefs([(root, "k0", "v") for root in roots])
        report = resolver.run()  # _trace_finish cross-checks the gauges
        assert report.pool_checkouts == 3
        checkouts = tracer.spans_named("conn.checkout")
        assert len(checkouts) == 3
        run_span = tracer.spans_named("bulk.run")[0]
        assert {span.parent_id for span in checkouts} == {run_span.span_id}
        assert sorted(span.tags["slot"] for span in checkouts) == [0, 1, 2]
        assert tracer.metrics.counters().get("pool.checkouts") == 3
        store.close()

    def test_statement_cache_hits_across_repeated_regions(self, tmp_path):
        network, roots = multi_chain_network(4, 10)
        plan = plan_resolution(network, explicit_users=roots)
        limits = RegionLimits(max_copy_edges=10, max_flood_pairs=10)
        compiled_plan = compile_plan(plan, limits=limits)
        store = _file_store(tmp_path, "cache.db")
        rows = [(root, "k0", "v") for root in roots]
        for attempt in range(2):
            resolver = BulkResolver(
                network,
                store=store,
                scheduler="compiled",
                plan=plan,
                compiled_plan=compiled_plan,
                pool_workers=2,
            )
            if attempt:
                store.clear()
            resolver.load_beliefs(rows)
            resolver.run()
        # Second run re-renders nothing: every region fingerprint hits.
        assert store.statement_cache_size == compiled_plan.region_count
        assert store.statement_cache_hits >= compiled_plan.region_count
        assert store.statement_cache_misses == compiled_plan.region_count
        store.close()


class TestPooledAtomicity:
    """All-or-nothing without the single run transaction."""

    def test_worker_failure_rolls_back_committed_regions(self, tmp_path):
        network, roots = multi_chain_network(3, 8)
        plan = plan_resolution(network, explicit_users=roots)
        limits = RegionLimits(max_copy_edges=8, max_flood_pairs=8)
        compiled_plan = compile_plan(plan, limits=limits)
        store = _file_store(tmp_path, "rollback.db")
        resolver = BulkResolver(
            network,
            store=store,
            scheduler="compiled",
            plan=plan,
            compiled_plan=compiled_plan,
            pool_workers=1,
        )
        rows = [(root, "k0", "v") for root in roots]
        resolver.load_beliefs(rows)
        before = sorted(store.possible_table())

        # Fail the *last* region's execution: earlier regions have already
        # committed their own transactions by then.
        failures = {"armed": compiled_plan.region_count - 1}
        original_once = type(resolver)._pooled_region_once

        def sabotaged(self, session, region, marker, run_id, token, clock):
            if failures["armed"] == 0:
                raise BulkProcessingError("injected region failure")
            failures["armed"] -= 1
            return original_once(
                self, session, region, marker, run_id, token, clock
            )

        resolver._pooled_region_once = sabotaged.__get__(resolver)
        with pytest.raises(BulkProcessingError, match="injected region"):
            resolver.run()
        # No partially visible run: the relation is exactly the loaded
        # beliefs again, and no private journal residue survives.
        assert sorted(store.possible_table()) == before
        cursor = store._execute("SELECT COUNT(*) FROM POSS_JOURNAL")
        assert cursor.fetchone()[0] == 0
        store.close()

    def test_checkpointed_pooled_run_resumes_not_rolls_back(self, tmp_path):
        network, roots = multi_chain_network(3, 8)
        plan = plan_resolution(network, explicit_users=roots)
        limits = RegionLimits(max_copy_edges=8, max_flood_pairs=8)
        compiled_plan = compile_plan(plan, limits=limits)
        rows = [(root, "k0", "v") for root in roots]

        def build(store):
            return BulkResolver(
                network,
                store=store,
                scheduler="compiled",
                plan=plan,
                compiled_plan=compiled_plan,
                pool_workers=2,
                checkpoint="pool-resume",
            )

        store = _file_store(tmp_path, "resume.db")
        resolver = build(store)
        resolver.load_beliefs(rows)

        failures = {"armed": 1}
        original_once = type(resolver)._pooled_region_once

        def sabotaged(self, session, region, marker, run_id, token, clock):
            if failures["armed"] == 0:
                raise BulkProcessingError("injected crash")
            failures["armed"] -= 1
            return original_once(
                self, session, region, marker, run_id, token, clock
            )

        resolver._pooled_region_once = sabotaged.__get__(resolver)
        with pytest.raises(BulkProcessingError, match="injected crash"):
            resolver.run()
        # The journal survived the crash: at least the one completed
        # region is recorded for the resume.
        assert store.journal_completed("pool-resume")

        resumed = build(store)
        resumed.load_beliefs(rows)
        report = resumed.run()
        assert report.checkpointed
        assert report.nodes_skipped > 0

        # Byte-identical to a clean sequential run of the same plan.
        reference_store = _file_store(tmp_path, "resume-ref.db")
        reference = BulkResolver(
            network,
            store=reference_store,
            scheduler="compiled",
            plan=plan,
            compiled_plan=compiled_plan,
        )
        reference.load_beliefs(rows)
        reference.run()
        assert sorted(store.possible_table()) == sorted(
            reference_store.possible_table()
        )
        store.close()
        reference_store.close()


class TestPooledEquivalenceProperty:
    """100 random networks: pooled == single-connection, byte for byte."""

    NETWORKS = 100

    def test_pooled_matches_single_connection(
        self, tmp_path, serialized_relation
    ):
        rng = random.Random(52110)
        pool_cycle = (1, 2, 4)
        for trial in range(self.NETWORKS):
            network, explicit = _random_network(rng)
            rows = _random_rows(rng, explicit, n_objects=2)
            reference_store = _file_store(tmp_path, f"ref{trial}.db")
            reference = BulkResolver(
                network,
                store=reference_store,
                explicit_users=explicit,
                scheduler="compiled",
            )
            reference.load_beliefs(rows)
            reference.run()
            expected = serialized_relation(reference_store)
            reference_store.close()

            pool_workers = pool_cycle[trial % len(pool_cycle)]
            store = _file_store(tmp_path, f"pool{trial}.db")
            resolver = BulkResolver(
                network,
                store=store,
                explicit_users=explicit,
                scheduler="compiled",
                pool_workers=pool_workers,
            )
            resolver.load_beliefs(rows)
            report = resolver.run()
            assert report.pool_workers >= 1
            assert serialized_relation(store) == expected, (
                f"trial {trial}: pooled ({pool_workers} workers) diverged "
                "from the single-connection replay"
            )
            store.close()
