"""The bulk suite against a real client/server engine (ROADMAP item (a)).

These tests drive the whole bulk path — store, transactions, resolvers,
sharding — through :class:`~repro.bulk.backends.DbApiBackend` on PostgreSQL
(psycopg, ``format`` paramstyle).  They are gated on ``REPRO_PG_DSN``; the
CI postgres service-container job sets it (see ``.github/workflows/ci.yml``),
and locally::

    REPRO_PG_DSN="dbname=repro user=repro password=repro host=localhost" \
        PYTHONPATH=src python -m pytest -q tests/bulk/test_postgres.py

Shards are placed on separate PostgreSQL *schemas* of the one database
(``search_path``-scoped connections), demonstrating the backend-per-shard
seam without needing several servers.
"""

from __future__ import annotations

import os

import pytest

from repro.bulk.backends import DbApiBackend, ShardSpec
from repro.bulk.executor import BulkResolver, ConcurrentBulkResolver
from repro.bulk.store import PossStore, ShardedPossStore
from repro.core.network import TrustNetwork
from repro.core.resolution import resolve
from repro.incremental.deltas import AddTrust, RemoveUser, SetBelief
from repro.incremental.session import IncrementalSession
from repro.workloads.bulkload import BELIEF_USERS, figure19_network, generate_objects

DSN = os.environ.get("REPRO_PG_DSN", "")

pytestmark = pytest.mark.skipif(
    not DSN, reason="set REPRO_PG_DSN to run the bulk suite against PostgreSQL"
)

if DSN:  # pragma: no branch - import only attempted when gated on
    psycopg = pytest.importorskip(
        "psycopg", reason="REPRO_PG_DSN is set but psycopg is not installed"
    )


def pg_backend(schema: str = "public") -> DbApiBackend:
    """A psycopg backend whose connections are scoped to one schema."""

    def connect():
        connection = psycopg.connect(DSN)
        with connection.cursor() as cursor:
            cursor.execute(f"CREATE SCHEMA IF NOT EXISTS {schema}")
            cursor.execute(f"SET search_path TO {schema}")
        connection.commit()
        return connection

    return DbApiBackend(
        connect, paramstyle="format", name=f"pg-{schema}", dialect="postgres"
    )


@pytest.fixture
def pg_store():
    store = PossStore(backend=pg_backend())
    store.clear()
    yield store
    store.clear()
    store.close()


class TestPostgresStore:
    def test_bulk_statements_round_trip(self, pg_store):
        pg_store.insert_explicit_beliefs([("z", "k1", "v"), ("z", "k2", "w")])
        pg_store.copy_to_children("z", ["x", "y"])
        pg_store.flood_component(["f"], ["z", "x"])
        assert pg_store.possible_values("x", "k1") == frozenset({"v"})
        assert pg_store.possible_values("y", "k2") == frozenset({"w"})
        assert pg_store.possible_values("f", "k1") == frozenset({"v"})

    def test_transaction_rolls_back_on_error(self, pg_store):
        pg_store.insert_explicit_beliefs([("a", "k1", "v")])
        with pytest.raises(RuntimeError):
            with pg_store.transaction():
                pg_store.copy_from_parent("b", "a")
                raise RuntimeError("mid-run failure")
        assert pg_store.possible_values("b", "k1") == frozenset()
        assert pg_store.possible_values("a", "k1") == frozenset({"v"})

    def test_skeptic_flood_inserts_bottom(self, pg_store):
        pg_store.insert_explicit_beliefs([("p", "k1", "bad"), ("p", "k2", "ok")])
        pg_store.flood_component_skeptic(["q"], ["p"], {"q": ["bad"]})
        assert pg_store.possible_values("q", "k1") == frozenset({"__BOTTOM__"})
        assert pg_store.possible_values("q", "k2") == frozenset({"ok"})


class TestPostgresResolvers:
    def test_bulk_resolution_matches_sqlite(self, pg_store, serialized_relation):
        network = figure19_network()
        rows = generate_objects(30, conflict_probability=0.5, seed=13)

        reference = BulkResolver(network, explicit_users=BELIEF_USERS)
        reference.load_beliefs(rows)
        reference.run()
        expected = serialized_relation(reference.store)
        reference.store.close()

        resolver = BulkResolver(
            network, store=pg_store, explicit_users=BELIEF_USERS
        )
        resolver.load_beliefs(rows)
        report = resolver.run()
        assert report.backend == "pg-public"
        assert report.transactions == 1
        assert serialized_relation(pg_store) == expected

    def test_concurrent_sharded_resolution_over_schemas(self, serialized_relation):
        """Scatter/gather with one PostgreSQL schema per shard — the
        client/server engine supports threaded replay, so this exercises
        the genuinely concurrent path."""
        network = figure19_network()
        rows = generate_objects(40, conflict_probability=0.5, seed=17)

        reference = BulkResolver(network, explicit_users=BELIEF_USERS)
        reference.load_beliefs(rows)
        reference.run()
        expected = serialized_relation(reference.store)
        reference.store.close()

        backends = [pg_backend(f"repro_shard{i}") for i in range(3)]
        store = ShardedPossStore(ShardSpec.hashed(3), backends=backends)
        store.clear()
        assert store.supports_concurrent_replay
        resolver = ConcurrentBulkResolver(
            network, store=store, explicit_users=BELIEF_USERS
        )
        resolver.load_beliefs(rows)
        report = resolver.run()
        assert report.shards == 3
        assert report.transactions == 3
        assert report.statements_per_shard() == resolver.plan.statement_count()
        assert serialized_relation(store) == expected
        store.clear()
        store.close()

    def test_compiled_execution_matches_replay_with_fewer_statements(
        self, pg_store, serialized_relation
    ):
        """Recursive-CTE copy regions and window-function flood stages on a
        real PostgreSQL: byte-identical to replay, in far fewer statements."""
        network = figure19_network()
        rows = generate_objects(25, conflict_probability=0.5, seed=19)

        reference = BulkResolver(network, explicit_users=BELIEF_USERS)
        reference.load_beliefs(rows)
        replay_report = reference.run()
        expected = serialized_relation(reference.store)
        reference.store.close()

        assert pg_store.supports_compiled_regions
        resolver = BulkResolver(
            network, store=pg_store, explicit_users=BELIEF_USERS,
            scheduler="compiled",
        )
        resolver.load_beliefs(rows)
        report = resolver.run()
        assert serialized_relation(pg_store) == expected
        assert report.scheduler == "compiled"
        assert report.regions_compiled == resolver.compiled.region_count
        assert report.statements < replay_report.statements
        assert report.statements_saved > 0

    def test_skeptic_compiled_blocked_floods_match_replay(
        self, pg_store, serialized_relation
    ):
        """Blocked-flood regions (anti-joined window pass + ⊥ branch) on a
        real PostgreSQL: Skeptic resolution under the compiled scheduler is
        byte-identical to the pipelined replay and pushes the constrained
        floods down as single statements."""
        from repro.bulk.executor import SkepticBulkResolver
        from repro.workloads.bulkload import skeptic_chain_network

        network, constraints = skeptic_chain_network(40)
        rows = [
            (user, f"k{i}", f"a{4 * (i % 9 + 1)}" if i % 2 else f"b{i}")
            for i in range(5)
            for user in BELIEF_USERS
        ]

        reference = SkepticBulkResolver(
            network,
            positive_users=BELIEF_USERS,
            negative_constraints=constraints,
        )
        reference.load_beliefs(rows)
        replay_report = reference.run()
        expected = serialized_relation(reference.store)
        reference.store.close()

        resolver = SkepticBulkResolver(
            network,
            positive_users=BELIEF_USERS,
            negative_constraints=constraints,
            store=pg_store,
            scheduler="compiled",
        )
        resolver.load_beliefs(rows)
        report = resolver.run()
        assert serialized_relation(pg_store) == expected
        assert report.scheduler == "compiled"
        kinds = {region.kind for region in resolver.compiled.regions}
        assert "blocked_flood" in kinds
        assert report.regions_compiled > 0
        assert report.statements < replay_report.statements
        assert report.statements_saved > 0


class TestPostgresDeltaApply:
    """The incremental delta path (repro.incremental) on a real engine."""

    def test_delta_statements_round_trip(self, pg_store):
        pg_store.insert_rows([("a", "k1", "v"), ("a", "k2", "w"), ("b", "k1", "x")])
        assert pg_store.delete_user_rows(["a"], key="k1") == 1
        assert pg_store.possible_values("a", "k1") == frozenset()
        assert pg_store.possible_values("a", "k2") == frozenset({"w"})
        assert pg_store.delta_statements == 2

    def test_session_delta_apply_matches_full_reload(
        self, pg_store, serialized_relation, oscillator_network
    ):
        session = IncrementalSession(oscillator_network, store=pg_store)
        report = session.apply(SetBelief("x4", "v"), AddTrust("x5", "x1", 9))
        assert report.transactions == 1
        assert report.backend == "pg-public"
        assert report.rows_inserted > 0

        fresh = PossStore()
        fresh.insert_rows(session.rows())
        assert serialized_relation(pg_store) == serialized_relation(fresh)
        # Cross-check against a from-scratch resolution: session resolvers
        # are belief-detached, so the oracle takes the resolver's beliefs.
        oracle_network = TrustNetwork(
            users=session.network.users,
            mappings=session.network.mappings,
            explicit_beliefs=dict(session.resolver().beliefs),
        )
        assert session.resolver().possible == resolve(oracle_network).possible
        fresh.close()

    def test_sharded_delta_apply_over_schemas(
        self, serialized_relation, oscillator_network
    ):
        """Sharded delta application: key-routed deltas land on their owning
        schema-shard inside one all-or-nothing per-shard transaction."""
        backends = [pg_backend(f"repro_delta_shard{i}") for i in range(2)]
        store = ShardedPossStore(ShardSpec.hashed(2), backends=backends)
        store.clear()
        session = IncrementalSession(
            oscillator_network, store=store, keys=("k0", "k1", "k2")
        )
        report = session.apply(SetBelief("x4", "v", key="k1"))
        assert report.transactions == 2  # one per shard
        report = session.apply(RemoveUser("x4"))  # structural: every key
        assert report.keys == 3

        fresh = PossStore()
        fresh.insert_rows(session.rows())
        assert serialized_relation(store) == serialized_relation(fresh)
        fresh.close()
        store.clear()
        store.close()


class TestPostgresEngine:
    """The unified engine round trip on a real client/server store."""

    def test_engine_round_trip(self, pg_store, serialized_relation):
        from repro.engine import ResolutionEngine

        tn = TrustNetwork()
        tn.add_trust("b", "a", priority=1)
        tn.add_trust("c", "b", priority=1)
        tn.set_explicit_belief("a", "v")
        # No context manager: the pg_store fixture owns the connection.
        engine = ResolutionEngine.open(tn, store=pg_store)
        resolved = engine.resolve()
        assert resolved.resolutions["k0"].possible["c"] == frozenset({"v"})
        report = engine.materialize()
        assert report.backend == "pg-public"
        assert report.transactions == 1
        report = engine.apply(SetBelief("a", "w"), AddTrust("d", "c", 1))
        assert report.plan_source == "patched"
        assert engine.query("d") == frozenset({"w"})
        # The maintained relation equals a fresh load of the in-memory
        # state, and re-materializing the patched plan reproduces it.
        fresh = PossStore()
        fresh.insert_rows(engine._session.rows())
        expected = serialized_relation(fresh)
        fresh.close()
        assert serialized_relation(pg_store) == expected
        engine.materialize()
        assert serialized_relation(pg_store) == expected
