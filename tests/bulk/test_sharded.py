"""Tests for shard routing, the sharded store, and concurrent scatter/gather."""

from __future__ import annotations

import random
import threading

import pytest

from repro.bulk.backends import (
    DbApiBackend,
    ShardSpec,
    SqliteFileBackend,
    SqliteMemoryBackend,
)
from repro.bulk.executor import BulkResolver, ConcurrentBulkResolver
from repro.bulk.store import PossStore, ShardedPossStore
from repro.core.errors import BulkProcessingError
from repro.core.network import TrustNetwork
from repro.workloads.bulkload import BELIEF_USERS, figure19_network, generate_objects


class TestShardSpec:
    def test_hash_routing_is_deterministic_and_in_range(self):
        spec = ShardSpec.hashed(4)
        routes = [spec.shard_of(f"k{i}") for i in range(100)]
        assert routes == [spec.shard_of(f"k{i}") for i in range(100)]
        assert set(routes) <= {0, 1, 2, 3}
        # crc32 spreads the keys over all shards for any realistic count.
        assert len(set(routes)) == 4

    def test_hash_routing_does_not_use_randomized_hash(self):
        # crc32("k0") is stable across processes and platforms.
        import zlib

        spec = ShardSpec.hashed(3)
        assert spec.shard_of("k0") == zlib.crc32(b"k0") % 3

    def test_range_routing(self):
        spec = ShardSpec.ranged(["g", "p"])
        assert spec.count == 3
        assert spec.shard_of("a") == 0
        assert spec.shard_of("g") == 1  # boundaries are upper-exclusive
        assert spec.shard_of("k") == 1
        assert spec.shard_of("z") == 2

    def test_single_shard_spec(self):
        spec = ShardSpec.hashed(1)
        assert spec.shard_of("anything") == 0

    def test_invalid_specs_rejected(self):
        with pytest.raises(BulkProcessingError):
            ShardSpec(count=0)
        with pytest.raises(BulkProcessingError):
            ShardSpec(count=2, kind="modulo")
        with pytest.raises(BulkProcessingError):
            ShardSpec(count=3, kind="range", boundaries=("m",))
        with pytest.raises(BulkProcessingError):
            ShardSpec(count=3, kind="range", boundaries=("p", "g"))
        with pytest.raises(BulkProcessingError):
            # duplicate boundary: shard 1 could never receive a key
            ShardSpec.ranged(["m", "m"])
        with pytest.raises(BulkProcessingError):
            ShardSpec(count=2, kind="hash", boundaries=("m",))

    def test_partition_rows_routes_like_shard_of(self):
        spec = ShardSpec.hashed(3)
        rows = [("u", f"k{i}", "v") for i in range(30)]
        partitions = spec.partition_rows(rows)
        assert sum(len(p) for p in partitions) == 30
        for shard, partition in enumerate(partitions):
            assert all(spec.shard_of(key) == shard for _u, key, _v in partition)


class TestShardedPossStore:
    def test_int_shorthand_builds_hashed_spec(self):
        with ShardedPossStore(3) as store:
            assert store.spec == ShardSpec.hashed(3)
            assert len(store.shards) == 3

    def test_loading_routes_rows_by_key(self):
        with ShardedPossStore(ShardSpec.hashed(4)) as store:
            rows = [("x6", f"k{i}", f"v{i}") for i in range(40)]
            assert store.insert_explicit_beliefs(rows) == 40
            assert store.row_count() == 40
            assert sum(store.row_counts_per_shard()) == 40
            # Each key's rows live on exactly the shard the spec names.
            for _user, key, value in rows:
                owning = store.shards[store.spec.shard_of(key)]
                assert owning.possible_values("x6", key) == frozenset({value})

    def test_fanout_statements_match_single_store(self, serialized_relation):
        rows = [("a", f"k{i}", f"v{i % 3}") for i in range(20)]
        with PossStore() as single, ShardedPossStore(3) as sharded:
            for store in (single, sharded):
                store.insert_explicit_beliefs(rows)
                store.copy_to_children("a", ["b", "c"])
                store.flood_component(["d"], ["a", "b"])
            assert serialized_relation(sharded) == serialized_relation(single)
            assert sharded.row_count() == single.row_count()
            assert sharded.conflict_count() == single.conflict_count()
            assert sharded.certain_snapshot() == single.certain_snapshot()
            assert sharded.users() == single.users()
            assert sharded.keys() == single.keys()

    def test_key_queries_route_to_owning_shard(self):
        with ShardedPossStore(4) as store:
            store.insert_explicit_beliefs([("x", "k7", "v")])
            assert store.possible_values("x", "k7") == frozenset({"v"})
            assert store.certain_values("x", "k7") == frozenset({"v"})
            assert store.shard_for("k7") is store.shards[store.spec.shard_of("k7")]

    def test_backend_count_must_match_spec(self):
        with pytest.raises(BulkProcessingError):
            ShardedPossStore(
                ShardSpec.hashed(3), backends=[SqliteMemoryBackend()] * 2
            )

    def test_backend_name_and_replay_capability(self, tmp_path):
        with ShardedPossStore(2) as memory_store:
            assert memory_store.backend_name == "sharded(sqlite-memoryx2)"
            assert not memory_store.supports_concurrent_replay
        backends = [
            SqliteFileBackend(str(tmp_path / f"shard{i}.db")) for i in range(2)
        ]
        with ShardedPossStore(2, backends=backends) as file_store:
            assert file_store.backend_name == "sharded(sqlite-filex2)"
            assert file_store.supports_concurrent_replay

    def test_transaction_commits_every_shard(self):
        with ShardedPossStore(2) as store:
            store.insert_explicit_beliefs([("a", "k0", "v"), ("a", "k1", "v")])
            transactions_before = store.transactions
            with store.transaction():
                assert store.in_transaction
                store.copy_from_parent("b", "a")
            assert not store.in_transaction
            assert store.transactions == transactions_before + 2
            assert store.possible_values("b", "k0") == frozenset({"v"})
            assert store.possible_values("b", "k1") == frozenset({"v"})

    def test_transaction_rolls_back_every_shard(self):
        with ShardedPossStore(2) as store:
            store.insert_explicit_beliefs([("a", "k0", "v"), ("a", "k1", "v")])
            before = sorted(store.possible_table())
            with pytest.raises(RuntimeError):
                with store.transaction():
                    store.copy_from_parent("b", "a")
                    raise RuntimeError("mid-run failure")
            assert sorted(store.possible_table()) == before
            for shard in store.shards:
                assert not shard.in_transaction

    def test_nested_transactions_rejected(self):
        with ShardedPossStore(2) as store:
            with store.transaction():
                with pytest.raises(BulkProcessingError):
                    with store.transaction():
                        pass  # pragma: no cover - never entered


class TestConcurrentBulkResolver:
    def test_matches_single_store_on_figure19(self, serialized_relation):
        network = figure19_network()
        rows = generate_objects(40, conflict_probability=0.5, seed=7)
        reference = BulkResolver(network, explicit_users=BELIEF_USERS)
        reference.load_beliefs(rows)
        reference.run()
        expected = serialized_relation(reference.store)
        reference.store.close()

        for shards in (1, 2, 4):
            resolver = ConcurrentBulkResolver(
                network, shards=shards, explicit_users=BELIEF_USERS
            )
            resolver.load_beliefs(rows)
            report = resolver.run()
            assert serialized_relation(resolver.store) == expected
            assert report.shards == shards
            assert report.transactions == shards
            assert report.statements_per_shard() == reference.plan.statement_count()
            assert report.dag_stages == resolver.dag.stage_count
            assert sorted(report.per_shard_seconds) == [
                f"shard{i}" for i in range(shards)
            ]
            resolver.store.close()

    def test_range_sharding_matches_hash_sharding(self, serialized_relation):
        network = figure19_network()
        rows = generate_objects(30, seed=3)
        relations = []
        for spec in (ShardSpec.hashed(3), ShardSpec.ranged(["k2", "k5"])):
            resolver = ConcurrentBulkResolver(
                network, shards=spec, explicit_users=BELIEF_USERS
            )
            resolver.load_beliefs(rows)
            resolver.run()
            relations.append(serialized_relation(resolver.store))
            resolver.store.close()
        assert relations[0] == relations[1]

    def test_file_backed_shards_replay_on_threads(self, tmp_path, monkeypatch, serialized_relation):
        import repro.bulk.executor as executor_module

        spawned = []
        real_thread = threading.Thread

        class RecordingThread(real_thread):
            def __init__(self, *args, **kwargs):
                spawned.append(kwargs.get("name"))
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(executor_module.threading, "Thread", RecordingThread)
        network = figure19_network()
        rows = generate_objects(20, seed=5)
        backends = [
            SqliteFileBackend(str(tmp_path / f"shard{i}.db")) for i in range(2)
        ]
        store = ShardedPossStore(2, backends=backends)
        resolver = ConcurrentBulkResolver(
            network, store=store, explicit_users=BELIEF_USERS
        )
        resolver.load_beliefs(rows)
        report = resolver.run()
        assert spawned == ["shard0", "shard1"]
        assert report.shards == 2

        reference = BulkResolver(network, explicit_users=BELIEF_USERS)
        reference.load_beliefs(rows)
        reference.run()
        assert serialized_relation(store) == serialized_relation(reference.store)
        reference.store.close()
        store.close()

    def test_memory_shards_degrade_to_sequential(self, monkeypatch):
        import repro.bulk.executor as executor_module

        def no_threads(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("memory shards must not spawn replay threads")

        monkeypatch.setattr(executor_module.threading, "Thread", no_threads)
        resolver = ConcurrentBulkResolver(
            figure19_network(), shards=2, explicit_users=BELIEF_USERS
        )
        resolver.load_beliefs(generate_objects(10, seed=2))
        report = resolver.run()
        assert report.shards == 2
        assert report.rows_inserted > 0
        resolver.store.close()

    def test_failure_on_one_shard_rolls_back_all(self):
        resolver = ConcurrentBulkResolver(
            figure19_network(), shards=3, explicit_users=BELIEF_USERS
        )
        resolver.load_beliefs(generate_objects(15, seed=9))
        before = [sorted(shard.possible_table()) for shard in resolver.store.shards]

        victim = resolver.store.shards[1]

        def failing_copy(parent, children):
            raise BulkProcessingError("shard 1 lost its engine")

        victim.copy_to_children = failing_copy
        with pytest.raises(BulkProcessingError):
            resolver.run()
        after = [sorted(shard.possible_table()) for shard in resolver.store.shards]
        assert after == before
        assert not resolver.store.in_transaction
        resolver.store.close()

    def test_requires_a_sharded_store(self):
        with pytest.raises(BulkProcessingError):
            ConcurrentBulkResolver(figure19_network(), store=PossStore())

    def test_shards_and_store_are_mutually_exclusive(self):
        with ShardedPossStore(2) as store:
            with pytest.raises(BulkProcessingError):
                ConcurrentBulkResolver(figure19_network(), shards=8, store=store)

    def test_sequential_fallback_stops_replaying_after_a_failure(self):
        resolver = ConcurrentBulkResolver(
            figure19_network(), shards=3, explicit_users=BELIEF_USERS
        )
        resolver.load_beliefs(generate_objects(10, seed=6))
        replayed = []

        original = ConcurrentBulkResolver._replay_shard

        def recording_replay(self, shard, *args, **kwargs):
            replayed.append(shard)
            if len(replayed) == 1:
                raise BulkProcessingError("first shard dies")
            return original(self, shard, *args, **kwargs)  # pragma: no cover - must not run

        ConcurrentBulkResolver._replay_shard = recording_replay
        try:
            with pytest.raises(BulkProcessingError):
                resolver.run()
        finally:
            ConcurrentBulkResolver._replay_shard = original
        assert len(replayed) == 1  # shards 2 and 3 were never replayed
        resolver.store.close()

    def test_dbapi_shards_are_thread_eligible(self):
        import sqlite3

        backends = [
            DbApiBackend(
                lambda: sqlite3.connect(":memory:", check_same_thread=False),
                name="threadable-sqlite",
            )
            for _ in range(2)
        ]
        with ShardedPossStore(2, backends=backends) as store:
            assert store.supports_concurrent_replay
            resolver = ConcurrentBulkResolver(
                figure19_network(), store=store, explicit_users=BELIEF_USERS
            )
            resolver.load_beliefs(generate_objects(10, seed=4))
            report = resolver.run()
            assert report.shards == 2
            assert report.backend == "sharded(threadable-sqlitex2)"


def _random_network(rng, max_users: int = 9):
    """A random trust network plus the users carrying explicit beliefs."""
    n = rng.randint(4, max_users)
    users = [f"u{i}" for i in range(n)]
    tn = TrustNetwork()
    for user in users:
        tn.add_user(user)
    n_explicit = rng.randint(1, 2)
    explicit = users[:n_explicit]
    for child in users[n_explicit:]:
        parents = rng.sample([u for u in users if u != child], rng.randint(1, 2))
        priorities = (
            rng.sample([1, 2], len(parents))
            if rng.random() < 0.7
            else [1] * len(parents)
        )
        for parent, priority in zip(parents, priorities):
            tn.add_trust(child, parent, priority=priority)
    return tn, explicit


def _random_rows(rng, explicit, n_objects):
    rows = []
    for index in range(n_objects):
        key = f"k{index}"
        for user in explicit:
            rows.append((user, key, rng.choice(["v1", "v2", "v3"])))
    return rows


class TestShardedEquivalenceProperty:
    """Acceptance property: sharded concurrent execution is byte-identical to
    the single-store sequential path on randomized networks (≥ 200 networks
    × shard counts {1, 2, 4})."""

    NETWORKS = 200
    SHARD_COUNTS = (1, 2, 4)

    def test_sharded_execution_is_byte_identical_over_random_networks(self, serialized_relation):
        rng = random.Random(20100607)  # SIGMOD 2010 opening day
        for trial in range(self.NETWORKS):
            network, explicit = _random_network(rng)
            rows = _random_rows(rng, explicit, n_objects=rng.randint(2, 5))
            reference = BulkResolver(network, explicit_users=explicit)
            reference.load_beliefs(rows)
            reference.run()
            expected = serialized_relation(reference.store)
            reference.store.close()
            for shards in self.SHARD_COUNTS:
                resolver = ConcurrentBulkResolver(
                    network, shards=shards, explicit_users=explicit
                )
                resolver.load_beliefs(rows)
                report = resolver.run()
                observed = serialized_relation(resolver.store)
                assert observed == expected, (
                    f"trial {trial}, shards {shards}: sharded relation diverged"
                )
                assert (
                    report.statements_per_shard()
                    == reference.plan.statement_count()
                )
                resolver.store.close()
