"""Unit tests for the sqlite3-backed POSS(X, K, V) store."""

from __future__ import annotations

import pytest

from repro.bulk.store import BOTTOM_VALUE, PossRow, PossStore


@pytest.fixture
def store():
    with PossStore() as s:
        yield s


class TestLoading:
    def test_insert_and_query(self, store):
        inserted = store.insert_explicit_beliefs(
            [("alice", "k1", "v"), ("bob", "k1", "w")]
        )
        assert inserted == 2
        assert store.possible_values("alice", "k1") == frozenset({"v"})
        assert store.possible_values("bob", "k1") == frozenset({"w"})
        assert store.possible_values("alice", "missing") == frozenset()

    def test_row_count_users_keys(self, store):
        store.insert_explicit_beliefs([("a", "k1", "v"), ("a", "k2", "w")])
        assert store.row_count() == 2
        assert store.users() == frozenset({"a"})
        assert store.keys() == frozenset({"k1", "k2"})

    def test_clear(self, store):
        store.insert_explicit_beliefs([("a", "k1", "v")])
        store.clear()
        assert store.row_count() == 0

    def test_values_are_stringified(self, store):
        store.insert_explicit_beliefs([("a", 1, 2)])
        assert store.possible_values("a", 1) == frozenset({"2"})


class TestBulkStatements:
    def test_copy_from_parent(self, store):
        store.insert_explicit_beliefs([("z", "k1", "v"), ("z", "k2", "w")])
        copied = store.copy_from_parent("x", "z")
        assert copied == 2
        assert store.possible_values("x", "k1") == frozenset({"v"})
        assert store.possible_values("x", "k2") == frozenset({"w"})

    def test_copy_to_children_fills_every_child_in_one_statement(self, store):
        store.insert_explicit_beliefs([("z", "k1", "v"), ("z", "k2", "w")])
        statements_before = store.bulk_statements
        copied = store.copy_to_children("z", ["x", "y"])
        assert copied == 4
        assert store.bulk_statements == statements_before + 1
        for child in ("x", "y"):
            assert store.possible_values(child, "k1") == frozenset({"v"})
            assert store.possible_values(child, "k2") == frozenset({"w"})

    def test_copy_to_children_single_child_matches_copy_from_parent(self, store):
        store.insert_explicit_beliefs([("z", "k1", "v")])
        assert store.copy_to_children("z", ["x"]) == 1
        assert store.possible_values("x", "k1") == frozenset({"v"})

    def test_copy_to_children_without_children_is_noop(self, store):
        statements_before = store.bulk_statements
        assert store.copy_to_children("z", []) == 0
        assert store.bulk_statements == statements_before

    def test_flood_component_unions_parent_values(self, store):
        store.insert_explicit_beliefs(
            [("z1", "k1", "v"), ("z2", "k1", "w"), ("z1", "k2", "v"), ("z2", "k2", "v")]
        )
        store.flood_component(["x", "y"], ["z1", "z2"])
        assert store.possible_values("x", "k1") == frozenset({"v", "w"})
        assert store.possible_values("y", "k1") == frozenset({"v", "w"})
        assert store.possible_values("x", "k2") == frozenset({"v"})

    def test_flood_component_without_parents_is_noop(self, store):
        assert store.flood_component(["x"], []) == 0

    def test_flood_component_skeptic_inserts_bottom_for_blocked_values(self, store):
        store.insert_explicit_beliefs([("z", "k1", "v"), ("z", "k2", "w")])
        store.flood_component_skeptic(["x"], ["z"], {"x": ["v"]})
        assert store.possible_values("x", "k1") == frozenset({BOTTOM_VALUE})
        assert store.possible_values("x", "k2") == frozenset({"w"})

    def test_flood_component_skeptic_without_blocked_values(self, store):
        store.insert_explicit_beliefs([("z", "k1", "v")])
        store.flood_component_skeptic(["x"], ["z"], {})
        assert store.possible_values("x", "k1") == frozenset({"v"})


class TestAggregates:
    def test_certain_snapshot_and_conflicts(self, store):
        store.insert_explicit_beliefs(
            [("a", "k1", "v"), ("a", "k2", "v"), ("a", "k2", "w")]
        )
        snapshot = store.certain_snapshot()
        assert snapshot[("a", "k1")] == "v"
        assert ("a", "k2") not in snapshot
        assert store.conflict_count() == 1
        assert store.certain_values("a", "k1") == frozenset({"v"})
        assert store.certain_values("a", "k2") == frozenset()

    def test_possible_table_is_distinct(self, store):
        store.insert_explicit_beliefs([("a", "k1", "v"), ("a", "k1", "v")])
        assert store.possible_table() == [PossRow("a", "k1", "v")]


class TestDeltaStatements:
    """The incremental engine's DELETE/INSERT path (repro.incremental)."""

    def test_insert_rows_counts_one_statement(self, store):
        assert store.delta_statements == 0
        inserted = store.insert_rows([("a", "k1", "v"), ("a", "k2", "w")])
        assert inserted == 2
        assert store.delta_statements == 1
        assert store.possible_values("a", "k1") == frozenset({"v"})
        assert store.insert_rows([]) == 0
        assert store.delta_statements == 1  # empty batches are free

    def test_delete_user_rows_all_keys(self, store):
        store.insert_rows([("a", "k1", "v"), ("a", "k2", "w"), ("b", "k1", "x")])
        deleted = store.delete_user_rows(["a"])
        assert deleted == 2
        assert store.possible_values("a", "k1") == frozenset()
        assert store.possible_values("b", "k1") == frozenset({"x"})
        assert store.delta_statements == 2

    def test_delete_user_rows_scoped_to_one_key(self, store):
        store.insert_rows([("a", "k1", "v"), ("a", "k2", "w")])
        assert store.delete_user_rows(["a"], key="k1") == 1
        assert store.possible_values("a", "k1") == frozenset()
        assert store.possible_values("a", "k2") == frozenset({"w"})
        assert store.delete_user_rows([], key="k1") == 0

    def test_delta_statements_join_run_transactions(self, store):
        store.insert_rows([("a", "k1", "v")])
        with pytest.raises(RuntimeError):
            with store.transaction():
                store.delete_user_rows(["a"])
                store.insert_rows([("a", "k1", "replacement")])
                raise RuntimeError("mid-apply failure")
        # Both delta statements rolled back with the transaction.
        assert store.possible_values("a", "k1") == frozenset({"v"})


class TestShardedDeltaStatements:
    def test_key_scoped_delete_routes_to_owning_shard(self):
        from repro.bulk.store import ShardedPossStore

        store = ShardedPossStore(3)
        store.insert_rows([("a", "k1", "v"), ("a", "k2", "w"), ("b", "k1", "x")])
        owning = store.shard_for("k1")
        before = [shard.delta_statements for shard in store.shards]
        assert store.delete_user_rows(["a"], key="k1") == 1
        after = [shard.delta_statements for shard in store.shards]
        assert sum(after) - sum(before) == 1  # only the owning shard moved
        assert owning.delta_statements == after[store.spec.shard_of("k1")]
        assert store.possible_values("a", "k2") == frozenset({"w"})
        store.close()

    def test_unscoped_delete_fans_out(self):
        from repro.bulk.store import ShardedPossStore

        store = ShardedPossStore(2)
        store.insert_rows([("a", "k1", "v"), ("a", "k2", "w")])
        assert store.delete_user_rows(["a"]) == 2
        assert store.row_count() == 0
        assert store.delta_statements >= 2
        store.close()

    def test_insert_rows_partitions_by_key(self):
        from repro.bulk.store import ShardedPossStore

        store = ShardedPossStore(2)
        rows = [("u", f"k{i}", "v") for i in range(8)]
        assert store.insert_rows(rows) == 8
        for i in range(8):
            shard = store.shard_for(f"k{i}")
            assert shard.possible_values("u", f"k{i}") == frozenset({"v"})
        assert store.row_count() == 8
        store.close()
