"""One-transaction-per-run semantics: commit on success, rollback on failure."""

from __future__ import annotations

import pytest

from repro.bulk.executor import (
    SCHEDULERS,
    BulkResolver,
    ConcurrentBulkResolver,
    SkepticBulkResolver,
)
from repro.bulk.store import PossStore
from repro.core.errors import BulkProcessingError
from repro.workloads.bulkload import BELIEF_USERS, figure19_network, generate_objects


@pytest.fixture
def loaded_resolver():
    resolver = BulkResolver(figure19_network(), explicit_users=BELIEF_USERS)
    resolver.load_beliefs(generate_objects(12, seed=3))
    yield resolver
    resolver.store.close()


class TestStoreTransaction:
    def test_commit_on_success(self):
        with PossStore() as store:
            transactions_before = store.transactions
            with store.transaction():
                store.insert_explicit_beliefs([("a", "k1", "v")])
                store.copy_from_parent("b", "a")
            assert store.transactions == transactions_before + 1
            assert store.possible_values("b", "k1") == frozenset({"v"})

    def test_rollback_on_error(self):
        with PossStore() as store:
            store.insert_explicit_beliefs([("a", "k1", "v")])
            with pytest.raises(RuntimeError):
                with store.transaction():
                    store.copy_from_parent("b", "a")
                    raise RuntimeError("mid-transaction failure")
            # The copy rolled back; the committed load survived.
            assert store.possible_values("b", "k1") == frozenset()
            assert store.possible_values("a", "k1") == frozenset({"v"})

    def test_nested_transactions_rejected(self):
        with PossStore() as store:
            with store.transaction():
                assert store.in_transaction
                with pytest.raises(BulkProcessingError):
                    with store.transaction():
                        pass  # pragma: no cover - never entered
            assert not store.in_transaction

    def test_transaction_reusable_after_rollback(self):
        with PossStore() as store:
            with pytest.raises(RuntimeError):
                with store.transaction():
                    raise RuntimeError("boom")
            with store.transaction():
                store.insert_explicit_beliefs([("a", "k1", "v")])
            assert store.row_count() == 1

    def test_rollback_works_on_autocommit_connections(self):
        """transaction() opens a real transaction even when the driver
        defaults to autocommit, so rollback is never a silent no-op."""
        import sqlite3

        from repro.bulk.backends import DbApiBackend

        backend = DbApiBackend(
            lambda: sqlite3.connect(":memory:", isolation_level=None),
            name="autocommit-sqlite",
        )
        with PossStore(backend=backend) as store:
            store.insert_explicit_beliefs([("a", "k1", "v")])
            with pytest.raises(RuntimeError):
                with store.transaction():
                    store.copy_from_parent("b", "a")
                    raise RuntimeError("mid-transaction failure")
            assert store.possible_values("b", "k1") == frozenset()

    def test_direct_statements_are_durable_on_disk(self, tmp_path):
        """Outside a run transaction, statement methods commit their own
        work, so an on-disk relation survives close()/reopen."""
        path = str(tmp_path / "poss.db")
        store = PossStore(path=path)
        store.insert_explicit_beliefs([("a", "k1", "v")])
        store.copy_from_parent("b", "a")
        store.flood_component(["c"], ["a"])
        store.close()
        with PossStore(path=path) as reopened:
            assert reopened.possible_values("b", "k1") == frozenset({"v"})
            assert reopened.possible_values("c", "k1") == frozenset({"v"})


class TestRunTransactionSemantics:
    def test_run_commits_exactly_one_transaction(self, loaded_resolver):
        report = loaded_resolver.run()
        assert report.transactions == 1

    def test_failed_run_leaves_poss_unchanged(self, loaded_resolver):
        """Rollback on a mid-run BulkProcessingError restores the loaded state."""
        before = sorted(loaded_resolver.store.possible_table())
        # Corrupt the plan mid-way: the executor hits the unknown step after
        # real bulk statements already executed inside the run transaction.
        loaded_resolver.plan.steps.insert(
            len(loaded_resolver.plan.steps) // 2, "not-a-step"
        )
        with pytest.raises(BulkProcessingError):
            loaded_resolver.run()
        after = sorted(loaded_resolver.store.possible_table())
        assert after == before
        assert not loaded_resolver.store.in_transaction

    def test_failed_run_can_be_retried_after_repair(self, loaded_resolver):
        loaded_resolver.plan.steps.insert(0, "not-a-step")
        with pytest.raises(BulkProcessingError):
            loaded_resolver.run()
        loaded_resolver.plan.steps.remove("not-a-step")
        report = loaded_resolver.run()
        assert report.transactions == 1
        assert report.rows_inserted > 0

    def test_skeptic_run_commits_one_transaction_and_rolls_back(self):
        from repro.core.network import TrustNetwork

        tn = TrustNetwork()
        tn.add_trust("p", "source", priority=2)
        tn.add_trust("p", "q", priority=1)
        tn.add_trust("q", "filter", priority=2)
        tn.add_trust("q", "p", priority=1)
        resolver = SkepticBulkResolver(
            tn, positive_users=["source"], negative_constraints={"filter": ["v1"]}
        )
        resolver.load_beliefs([("source", "k0", "v1")])
        before = sorted(resolver.store.possible_table())
        resolver.plan.steps.append("not-a-step")
        with pytest.raises(BulkProcessingError):
            resolver.run()
        assert sorted(resolver.store.possible_table()) == before
        resolver.plan.steps.pop()
        report = resolver.run()
        assert report.transactions == 1
        resolver.store.close()


class TestRollbackUnderPipelining:
    """The rollback guarantee holds under every scheduler × shard layout."""

    @pytest.mark.parametrize("shards", (1, 2, 4))
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_failed_run_restores_pre_run_state(self, scheduler, shards):
        network = figure19_network()
        if shards == 1:
            resolver = BulkResolver(
                network,
                explicit_users=BELIEF_USERS,
                scheduler=scheduler,
                workers=2,
            )
        else:
            resolver = ConcurrentBulkResolver(
                network,
                shards=shards,
                explicit_users=BELIEF_USERS,
                scheduler=scheduler,
            )
        resolver.load_beliefs(generate_objects(10, seed=5))
        before = sorted(resolver.store.possible_table())
        # Corrupt the plan mid-way: real statements have already executed
        # inside the run transaction(s) when the unknown step is hit.
        resolver.plan.steps.insert(len(resolver.plan.steps) // 2, "not-a-step")
        with pytest.raises(BulkProcessingError):
            resolver.run()
        assert sorted(resolver.store.possible_table()) == before
        assert not resolver.store.in_transaction
        # The store is reusable: the repaired plan runs to completion.
        resolver.plan.steps.remove("not-a-step")
        report = resolver.run()
        assert report.rows_inserted > 0
        resolver.store.close()


class TestReportConfiguration:
    def test_report_names_backend_strategy_and_phases(self, loaded_resolver):
        report = loaded_resolver.run()
        assert report.backend == "sqlite-memory"
        assert report.index_strategy == "baseline"
        assert report.grouped_plan is True
        assert set(report.phase_seconds) == {"copy", "flood"}
        assert all(value >= 0.0 for value in report.phase_seconds.values())
        # Phase timings partition the statement work of the run.
        assert sum(report.phase_seconds.values()) <= report.elapsed_seconds

    def test_report_reflects_custom_store_configuration(self):
        store = PossStore(index_strategy="covering")
        resolver = BulkResolver(
            figure19_network(),
            store=store,
            explicit_users=BELIEF_USERS,
            group_copies=False,
        )
        resolver.load_beliefs(generate_objects(5, seed=1))
        report = resolver.run()
        assert report.index_strategy == "covering"
        assert report.grouped_plan is False
        store.close()
