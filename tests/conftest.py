"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

import pytest

from repro.core.network import TrustNetwork


@pytest.fixture
def oscillator_network() -> TrustNetwork:
    """The Figure 4b oscillator: two stable solutions."""
    tn = TrustNetwork()
    tn.add_trust("x1", "x2", priority=100)
    tn.add_trust("x1", "x3", priority=50)
    tn.add_trust("x2", "x1", priority=80)
    tn.add_trust("x2", "x4", priority=40)
    tn.set_explicit_belief("x3", "v")
    tn.set_explicit_belief("x4", "w")
    return tn


@pytest.fixture
def simple_network() -> TrustNetwork:
    """The Figure 4a network: a single stable solution."""
    tn = TrustNetwork()
    tn.add_trust("x1", "x2", priority=100)
    tn.add_trust("x1", "x3", priority=50)
    tn.set_explicit_belief("x2", "v")
    tn.set_explicit_belief("x3", "w")
    return tn


@pytest.fixture
def indus_mappings() -> List[Tuple[str, int, str]]:
    """The Figure 2 trust mappings (parent, priority, child)."""
    return [
        ("Bob", 100, "Alice"),
        ("Charlie", 50, "Alice"),
        ("Alice", 80, "Bob"),
    ]


def random_binary_network(
    seed: int,
    n_nodes: int = 8,
    n_values: int = 3,
    edge_probability: float = 0.7,
    belief_probability: float = 0.6,
) -> TrustNetwork:
    """A random binary trust network used by property-based tests.

    Nodes are numbered; edges only go in a way that keeps fan-in at most two,
    cycles are allowed, and explicit beliefs are placed on a random subset of
    the nodes without parents.
    """
    rng = random.Random(seed)
    users = [f"u{i}" for i in range(n_nodes)]
    values = [f"val{i}" for i in range(n_values)]
    tn = TrustNetwork(users=users)

    fan_in: Dict[str, int] = {user: 0 for user in users}
    for child in users:
        for _ in range(2):
            if fan_in[child] >= 2 or rng.random() > edge_probability:
                continue
            parent = rng.choice(users)
            if parent == child:
                continue
            if any(
                m.parent == parent for m in tn.incoming(child)
            ):
                continue
            priority = rng.choice([1, 2, 2])  # allow ties occasionally
            tn.add_trust(child, parent, priority=priority)
            fan_in[child] += 1

    for user in users:
        if not tn.incoming(user) and rng.random() < belief_probability:
            tn.set_explicit_belief(user, rng.choice(values))
    return tn
