"""Tests for the acyclic evaluator (Proposition 3.6)."""

from __future__ import annotations

import pytest

from repro.core.acyclic import resolve_acyclic
from repro.core.beliefs import Belief, BeliefSet, Paradigm
from repro.core.errors import NetworkError
from repro.core.network import TrustNetwork
from repro.core.resolution import resolve


class TestAcyclicResolution:
    def test_simple_network_positive_only(self, simple_network):
        for paradigm in Paradigm:
            solution = resolve_acyclic(simple_network, paradigm)
            assert solution["x1"].positive_value == "v"
            assert solution["x2"].positive_value == "v"
            assert solution["x3"].positive_value == "w"

    def test_agrees_with_algorithm1_on_positive_only_dags(self, simple_network):
        reference = resolve(simple_network)
        for paradigm in Paradigm:
            solution = resolve_acyclic(simple_network, paradigm)
            for user in simple_network.users:
                positive = solution[user].positive_value
                expected = reference.certain_value(user)
                assert positive == expected

    def test_cyclic_network_is_rejected(self, oscillator_network):
        with pytest.raises(NetworkError):
            resolve_acyclic(oscillator_network)

    def test_ties_are_rejected(self):
        tn = TrustNetwork(mappings=[("a", 1, "x"), ("b", 1, "x")])
        tn.set_explicit_belief("a", "v")
        tn.set_explicit_belief("b", "w")
        with pytest.raises(NetworkError):
            resolve_acyclic(tn)

    def test_more_than_two_parents_rejected(self):
        tn = TrustNetwork(
            mappings=[("a", 1, "x"), ("b", 2, "x"), ("c", 3, "x")],
            explicit_beliefs={"a": "v"},
        )
        with pytest.raises(NetworkError):
            resolve_acyclic(tn)

    def test_fixed_nodes_break_cycles(self, oscillator_network):
        # Fixing x1 removes the only cycle; the rest is evaluated around it.
        fixed = {"x1": BeliefSet.from_positive("v")}
        solution = resolve_acyclic(oscillator_network, Paradigm.AGNOSTIC, fixed=fixed)
        assert solution["x2"].positive_value == "v"

    def test_constraint_filters_value_from_non_preferred_parent(self):
        tn = TrustNetwork()
        tn.add_trust("x", "filter", priority=2)
        tn.add_trust("x", "source", priority=1)
        tn.set_explicit_belief("filter", BeliefSet.from_negatives(["bad"]))
        tn.set_explicit_belief("source", "bad")
        for paradigm in Paradigm:
            solution = resolve_acyclic(tn, paradigm)
            assert solution["x"].positive_value is None, paradigm

    def test_constraint_lets_other_values_through(self):
        tn = TrustNetwork()
        tn.add_trust("x", "filter", priority=2)
        tn.add_trust("x", "source", priority=1)
        tn.set_explicit_belief("filter", BeliefSet.from_negatives(["bad"]))
        tn.set_explicit_belief("source", "good")
        for paradigm in Paradigm:
            solution = resolve_acyclic(tn, paradigm)
            assert solution["x"].positive_value == "good", paradigm

    def test_skeptic_positive_blocks_everything_downstream(self):
        # Under Skeptic, accepting a+ also rejects every other value, so a
        # downstream node whose preferred parent rejects a+ ends with ⊥.
        tn = TrustNetwork()
        tn.add_trust("mid", "value_root", priority=1)
        tn.add_trust("low", "reject_a", priority=2)
        tn.add_trust("low", "mid", priority=1)
        tn.add_trust("sink", "low", priority=2)
        tn.add_trust("sink", "other_value", priority=1)
        tn.set_explicit_belief("value_root", "a")
        tn.set_explicit_belief("reject_a", BeliefSet.from_negatives(["a"]))
        tn.set_explicit_belief("other_value", "b")
        skeptic = resolve_acyclic(tn, Paradigm.SKEPTIC)
        assert skeptic["low"].is_bottom
        assert skeptic["sink"].is_bottom
        agnostic = resolve_acyclic(tn, Paradigm.AGNOSTIC)
        assert agnostic["sink"].positive_value == "b"

    def test_empty_parents_yield_normalized_explicit_belief(self):
        tn = TrustNetwork(explicit_beliefs={"a": "v"})
        solution = resolve_acyclic(tn, Paradigm.SKEPTIC)
        assert solution["a"] == BeliefSet.skeptic_positive("v")
