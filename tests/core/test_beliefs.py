"""Unit tests for signed beliefs, belief sets and the paradigm algebra."""

from __future__ import annotations

import pytest

from repro.core.beliefs import BOTTOM, Belief, BeliefSet, Paradigm, Sign
from repro.core.errors import BeliefError, InconsistentBeliefsError, ParadigmError


class TestBelief:
    def test_positive_and_negative_constructors(self):
        assert Belief.positive("cow").sign is Sign.POSITIVE
        assert Belief.negative("cow").sign is Sign.NEGATIVE
        assert Belief.positive("cow").is_positive
        assert Belief.negative("cow").is_negative

    def test_distinct_positive_beliefs_conflict(self):
        assert Belief.positive("cow").conflicts_with(Belief.positive("jar"))

    def test_same_positive_beliefs_do_not_conflict(self):
        assert Belief.positive("cow").consistent_with(Belief.positive("cow"))

    def test_positive_conflicts_with_matching_negative(self):
        assert Belief.positive("cow").conflicts_with(Belief.negative("cow"))
        assert Belief.negative("cow").conflicts_with(Belief.positive("cow"))

    def test_positive_consistent_with_other_negative(self):
        assert Belief.positive("cow").consistent_with(Belief.negative("jar"))

    def test_negative_beliefs_never_conflict(self):
        assert Belief.negative("cow").consistent_with(Belief.negative("cow"))
        assert Belief.negative("cow").consistent_with(Belief.negative("jar"))

    def test_beliefs_are_hashable_and_comparable(self):
        assert len({Belief.positive("a"), Belief.positive("a")}) == 1
        assert Belief("a", Sign.NEGATIVE) != Belief("a", Sign.POSITIVE)


class TestParadigm:
    @pytest.mark.parametrize(
        "alias, expected",
        [
            ("A", Paradigm.AGNOSTIC),
            ("agnostic", Paradigm.AGNOSTIC),
            ("E", Paradigm.ECLECTIC),
            ("Eclectic", Paradigm.ECLECTIC),
            ("s", Paradigm.SKEPTIC),
            (Paradigm.SKEPTIC, Paradigm.SKEPTIC),
        ],
    )
    def test_coerce_accepts_names_and_abbreviations(self, alias, expected):
        assert Paradigm.coerce(alias) is expected

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ParadigmError):
            Paradigm.coerce("optimist")
        with pytest.raises(ParadigmError):
            Paradigm.coerce(42)


class TestBeliefSetConstruction:
    def test_empty_set(self):
        empty = BeliefSet.empty()
        assert empty.is_empty
        assert not empty.is_bottom
        assert empty.positive_value is None

    def test_positive_singleton(self):
        beliefs = BeliefSet.from_positive("cow")
        assert beliefs.positive_value == "cow"
        assert beliefs.contains(Belief.positive("cow"))
        assert not beliefs.rejects("cow")

    def test_negative_set(self):
        beliefs = BeliefSet.from_negatives(["cow", "jar"])
        assert beliefs.rejects("cow") and beliefs.rejects("jar")
        assert not beliefs.rejects("fish")
        assert beliefs.positive_value is None

    def test_bottom_rejects_everything(self):
        assert BOTTOM.is_bottom
        assert BOTTOM.rejects("anything")
        assert not BOTTOM.accepts("anything")

    def test_skeptic_positive_rejects_everything_else(self):
        beliefs = BeliefSet.skeptic_positive("cow")
        assert beliefs.positive_value == "cow"
        assert beliefs.accepts("cow")
        assert beliefs.rejects("jar")
        assert not beliefs.rejects("cow")

    def test_from_beliefs_consistent(self):
        beliefs = BeliefSet.from_beliefs(
            [Belief.positive("cow"), Belief.negative("jar")]
        )
        assert beliefs.positive_value == "cow"
        assert beliefs.rejects("jar")

    def test_from_beliefs_conflicting_positives_raises(self):
        with pytest.raises(InconsistentBeliefsError):
            BeliefSet.from_beliefs([Belief.positive("cow"), Belief.positive("jar")])

    def test_from_beliefs_positive_and_matching_negative_raises(self):
        with pytest.raises(InconsistentBeliefsError):
            BeliefSet.from_beliefs([Belief.positive("cow"), Belief.negative("cow")])

    def test_finite_negatives_cannot_be_enumerated_for_bottom(self):
        with pytest.raises(BeliefError):
            BOTTOM.finite_negative_values()


class TestBeliefSetQueries:
    def test_restrict_domain_materializes_cofinite_sets(self):
        beliefs = BeliefSet.skeptic_positive("a")
        materialized = beliefs.restrict_domain(["a", "b", "c"])
        assert Belief.positive("a") in materialized
        assert Belief.negative("b") in materialized
        assert Belief.negative("c") in materialized
        assert Belief.negative("a") not in materialized

    def test_restrict_domain_finite_negatives(self):
        beliefs = BeliefSet.from_negatives(["b"])
        assert beliefs.restrict_domain(["a", "b"]) == frozenset({Belief.negative("b")})

    def test_accepts_respects_positive_and_negatives(self):
        beliefs = BeliefSet.from_beliefs([Belief.positive("a"), Belief.negative("b")])
        assert beliefs.accepts("a")
        assert not beliefs.accepts("b")
        assert not beliefs.accepts("c")  # a different positive conflicts with a+

    def test_consistency_checks(self):
        assert BeliefSet.from_positive("a").is_consistent()
        assert BOTTOM.is_consistent()
        beliefs = BeliefSet.from_positive("a")
        assert beliefs.consistent_with_belief(Belief.negative("b"))
        assert not beliefs.consistent_with_belief(Belief.negative("a"))
        assert not beliefs.consistent_with_belief(Belief.positive("b"))


class TestPreferredUnion:
    def test_keeps_all_of_first_argument(self):
        first = BeliefSet.from_positive("a")
        second = BeliefSet.from_positive("b")
        assert first.preferred_union(second).positive_value == "a"

    def test_adds_consistent_beliefs_of_second(self):
        first = BeliefSet.from_negatives(["a"])
        second = BeliefSet.from_beliefs([Belief.positive("b"), Belief.negative("c")])
        merged = first.preferred_union(second)
        assert merged.positive_value == "b"
        assert merged.rejects("a") and merged.rejects("c")

    def test_blocks_positive_conflicting_with_first(self):
        first = BeliefSet.from_negatives(["b"])
        second = BeliefSet.from_positive("b")
        merged = first.preferred_union(second)
        assert merged.positive_value is None
        assert merged.rejects("b")

    def test_paper_examples_for_each_paradigm(self):
        a_neg = BeliefSet.from_negatives(["a"])
        b_pos = BeliefSet.from_positive("b")
        agnostic = a_neg.preferred_union_sigma(b_pos, Paradigm.AGNOSTIC)
        assert agnostic == BeliefSet.from_positive("b")

        eclectic = a_neg.preferred_union_sigma(b_pos, Paradigm.ECLECTIC)
        assert eclectic.positive_value == "b" and eclectic.rejects("a")

        skeptic = a_neg.preferred_union_sigma(b_pos, Paradigm.SKEPTIC)
        assert skeptic.positive_value == "b"
        assert skeptic.rejects("a") and skeptic.rejects("zzz")
        assert not skeptic.rejects("b")

        bottom = BeliefSet.from_negatives(["b"]).preferred_union_sigma(
            b_pos, Paradigm.SKEPTIC
        )
        assert bottom.is_bottom

    def test_union_raises_on_conflicting_positives(self):
        with pytest.raises(InconsistentBeliefsError):
            BeliefSet.from_positive("a").union(BeliefSet.from_positive("b"))

    def test_union_merges_negative_parts(self):
        merged = BeliefSet.from_negatives(["a"]).union(BeliefSet.from_negatives(["b"]))
        assert merged.rejects("a") and merged.rejects("b")

    def test_union_with_cofinite_keeps_exceptions_only_if_not_rejected(self):
        merged = BeliefSet.skeptic_positive("a").union(BeliefSet.from_negatives(["c"]))
        assert merged.rejects("c") and merged.rejects("b")
        assert not merged.rejects("a")


class TestNormalForms:
    def test_agnostic_drops_negatives_when_positive_present(self):
        beliefs = BeliefSet.from_beliefs([Belief.positive("a"), Belief.negative("b")])
        assert beliefs.normalize(Paradigm.AGNOSTIC) == BeliefSet.from_positive("a")

    def test_agnostic_keeps_pure_negative_sets(self):
        beliefs = BeliefSet.from_negatives(["a", "b"])
        assert beliefs.normalize(Paradigm.AGNOSTIC) == beliefs

    def test_eclectic_is_identity(self):
        beliefs = BeliefSet.from_beliefs([Belief.positive("a"), Belief.negative("b")])
        assert beliefs.normalize(Paradigm.ECLECTIC) == beliefs

    def test_skeptic_expands_positive_to_maximal_constraint(self):
        normalized = BeliefSet.from_positive("a").normalize(Paradigm.SKEPTIC)
        assert normalized == BeliefSet.skeptic_positive("a")

    def test_skeptic_keeps_negative_sets(self):
        beliefs = BeliefSet.from_negatives(["a"])
        assert beliefs.normalize(Paradigm.SKEPTIC) == beliefs


class TestAssociativity:
    def test_skeptic_preferred_union_is_associative_on_examples(self):
        sets = [
            BeliefSet.from_negatives(["a"]),
            BeliefSet.from_positive("a"),
            BeliefSet.from_positive("b"),
            BeliefSet.from_negatives(["b", "c"]),
            BeliefSet.empty(),
        ]
        for x in sets:
            for y in sets:
                for z in sets:
                    left = x.preferred_union_sigma(y, "S").preferred_union_sigma(z, "S")
                    right = x.preferred_union_sigma(
                        y.preferred_union_sigma(z, "S"), "S"
                    )
                    assert left == right, (x, y, z)

    def test_agnostic_and_eclectic_are_not_associative(self):
        a_neg = BeliefSet.from_negatives(["a"])
        a_pos = BeliefSet.from_positive("a")
        b_pos = BeliefSet.from_positive("b")
        for paradigm in (Paradigm.AGNOSTIC, Paradigm.ECLECTIC):
            left = a_neg.preferred_union_sigma(a_pos, paradigm).preferred_union_sigma(
                b_pos, paradigm
            )
            right = a_neg.preferred_union_sigma(
                a_pos.preferred_union_sigma(b_pos, paradigm), paradigm
            )
            assert left != right
