"""Tests for the TN → BTN binarization (Proposition 2.8, Appendix B.3)."""

from __future__ import annotations

import pytest

from repro.core.binarize import binarize, binarization_size, clique_binarization_row
from repro.core.bruteforce import possible_values_bruteforce
from repro.core.errors import NetworkError
from repro.core.network import TrustNetwork
from repro.core.resolution import resolve
from repro.workloads.cliques import clique_network


def build_fanin_network(priorities, beliefs):
    """A single child ``x`` with parents ``z1..zk`` at the given priorities."""
    tn = TrustNetwork()
    for index, priority in enumerate(priorities, start=1):
        tn.add_trust("x", f"z{index}", priority=priority)
    for user, value in beliefs.items():
        tn.set_explicit_belief(user, value)
    return tn


class TestStructure:
    def test_already_binary_network_is_unchanged_in_spirit(self, oscillator_network):
        result = binarize(oscillator_network)
        assert result.original_users == frozenset(oscillator_network.users)
        assert result.auxiliary_users == frozenset()
        assert result.btn.is_binary()
        assert len(result.btn.mappings) == len(oscillator_network.mappings)

    def test_every_output_is_binary(self):
        for k in (3, 4, 5, 7):
            tn = build_fanin_network(range(1, k + 1), {f"z{i}": f"v{i}" for i in range(1, k + 1)})
            result = binarize(tn)
            result.btn.validate()
            for user in result.btn.users:
                assert len(result.btn.incoming(user)) <= 2

    def test_cascade_node_count(self):
        # A node with k > 2 parents gains exactly k - 2 cascade nodes.
        for k in (3, 5, 8):
            tn = build_fanin_network(range(1, k + 1), {"z1": "v"})
            result = binarize(tn)
            assert len(result.cascades["x"]) == k - 2

    def test_explicit_belief_on_non_root_is_lifted(self):
        tn = TrustNetwork(mappings=[("p", 1, "x")], explicit_beliefs={"x": "own", "p": "v"})
        result = binarize(tn)
        assert "x" in result.belief_roots
        root = result.belief_roots["x"]
        assert result.btn.explicit_positive_value(root) == "own"
        # The lifted root must dominate the original parent.
        assert result.btn.preferred_parent("x") == root

    def test_explicit_belief_on_root_is_kept_in_place(self):
        tn = TrustNetwork(mappings=[("p", 1, "x")], explicit_beliefs={"p": "v"})
        result = binarize(tn)
        assert result.belief_roots == {}
        assert result.btn.explicit_positive_value("p") == "v"

    def test_clique_binarization_matches_figure11_formula(self):
        for n in (4, 5, 8, 10):
            network = clique_network(n, with_beliefs=False)
            result = binarize(network)
            expected = clique_binarization_row(n)
            assert len(result.btn.users) == expected["binarized_users"]
            assert len(result.btn.mappings) == expected["binarized_edges"]

    def test_clique_growth_factors_bounded(self):
        # Figure 11: edges grow by less than 2x, edges + nodes by less than 3x.
        for n in (4, 6, 10, 14):
            network = clique_network(n, with_beliefs=False)
            result = binarize(network)
            edge_factor = len(result.btn.mappings) / len(network.mappings)
            size_factor = (len(result.btn.users) + len(result.btn.mappings)) / network.size
            assert edge_factor < 2
            assert size_factor < 3

    def test_binarization_size_helper(self):
        assert binarization_size(10, 20, 2) == (10, 20)
        users, edges = binarization_size(4, 12, 3)
        assert users == 4 + 4 and edges == 4 * 4

    def test_clique_row_rejects_tiny_clique(self):
        with pytest.raises(NetworkError):
            clique_binarization_row(1)


class TestSemanticsPreserved:
    """Binarization must not change possible values of the original users."""

    def assert_equivalent(self, network):
        expected = possible_values_bruteforce(network)
        result = binarize(network)
        resolved = resolve(result.btn)
        for user in network.users:
            assert resolved.possible_values(user) == expected[user], user

    def test_three_parents_distinct_priorities(self):
        tn = build_fanin_network([1, 2, 3], {"z1": "a", "z2": "b", "z3": "c"})
        self.assert_equivalent(tn)

    def test_three_parents_top_tie(self):
        tn = build_fanin_network([1, 2, 2], {"z1": "a", "z2": "b", "z3": "c"})
        self.assert_equivalent(tn)

    def test_three_parents_bottom_tie(self):
        tn = build_fanin_network([1, 1, 2], {"z1": "a", "z2": "b", "z3": "c"})
        self.assert_equivalent(tn)

    def test_all_ties(self):
        tn = build_fanin_network([1, 1, 1, 1], {f"z{i}": f"v{i}" for i in range(1, 5)})
        self.assert_equivalent(tn)

    def test_figure10_priority_pattern(self):
        # p1 = p2 < p3 = p4 = p5 < p6 < p7 with partially defined beliefs.
        priorities = [1, 1, 3, 3, 3, 6, 7]
        beliefs = {"z2": "low", "z4": "mid", "z6": "high"}
        tn = build_fanin_network(priorities, beliefs)
        self.assert_equivalent(tn)

    def test_missing_top_parent_belief_falls_through(self):
        # The highest-priority parent has no belief: lower ones must win.
        tn = build_fanin_network([1, 2, 3], {"z1": "a", "z2": "b"})
        self.assert_equivalent(tn)

    def test_partial_beliefs_with_ties(self):
        tn = build_fanin_network([2, 2, 5], {"z1": "a", "z2": "b"})
        self.assert_equivalent(tn)

    def test_explicit_belief_overrides_parents_after_lifting(self):
        tn = TrustNetwork(
            mappings=[("p", 5, "x"), ("q", 1, "x")],
            explicit_beliefs={"x": "own", "p": "v", "q": "w"},
        )
        result = binarize(tn)
        resolved = resolve(result.btn)
        assert resolved.certain_value("x") == "own"

    def test_cycle_with_high_fanin_node(self):
        # A cyclic, non-binary network: x trusts three users, one of which
        # trusts x back.
        tn = TrustNetwork()
        tn.add_trust("x", "a", priority=3)
        tn.add_trust("x", "b", priority=2)
        tn.add_trust("x", "c", priority=1)
        tn.add_trust("b", "x", priority=1)
        tn.set_explicit_belief("a", "va")
        tn.set_explicit_belief("c", "vc")
        self.assert_equivalent(tn)
