"""Tests for the definition-level brute-force oracles themselves."""

from __future__ import annotations

import pytest

from repro.core.beliefs import BeliefSet, Paradigm
from repro.core.bruteforce import (
    certain_values_bruteforce,
    constrained_certain_positive,
    constrained_possible_positive,
    enumerate_constrained_solutions,
    enumerate_stable_solutions,
    possible_pairs_bruteforce,
    possible_values_bruteforce,
)
from repro.core.errors import NetworkError
from repro.core.network import TrustNetwork


class TestPositiveOnlyEnumeration:
    def test_simple_network_unique_solution(self, simple_network):
        solutions = enumerate_stable_solutions(simple_network)
        assert len(solutions) == 1
        assert solutions[0] == {"x1": "v", "x2": "v", "x3": "w"}

    def test_oscillator_two_solutions(self, oscillator_network):
        solutions = enumerate_stable_solutions(oscillator_network)
        assert len(solutions) == 2
        flooded = {frozenset({s["x1"], s["x2"]}) for s in solutions}
        assert flooded == {frozenset({"v"}), frozenset({"w"})}

    def test_unfounded_values_are_rejected(self):
        # A pure 2-cycle without external beliefs has exactly one stable
        # solution: everything undefined (no unfounded value can appear).
        tn = TrustNetwork()
        tn.add_trust("x", "y", priority=1)
        tn.add_trust("y", "x", priority=1)
        solutions = enumerate_stable_solutions(tn)
        assert solutions == [{}]

    def test_certain_and_possible_helpers(self, oscillator_network):
        possible = possible_values_bruteforce(oscillator_network)
        certain = certain_values_bruteforce(oscillator_network)
        assert possible["x1"] == frozenset({"v", "w"})
        assert certain["x1"] == frozenset()
        assert certain["x3"] == frozenset({"v"})

    def test_possible_pairs_bruteforce(self, oscillator_network):
        pairs = possible_pairs_bruteforce(oscillator_network)
        assert pairs[("x1", "x2")] == frozenset({("v", "v"), ("w", "w")})

    def test_size_guard(self):
        tn = TrustNetwork(users=[f"u{i}" for i in range(40)])
        with pytest.raises(NetworkError):
            enumerate_stable_solutions(tn, max_nodes=30)

    def test_priority_domination_is_enforced(self):
        # x must not take the low-priority parent's value when the
        # high-priority parent holds a conflicting one.
        tn = TrustNetwork()
        tn.add_trust("x", "hi", priority=2)
        tn.add_trust("x", "lo", priority=1)
        tn.set_explicit_belief("hi", "a")
        tn.set_explicit_belief("lo", "b")
        solutions = enumerate_stable_solutions(tn)
        assert all(solution["x"] == "a" for solution in solutions)


class TestConstrainedEnumeration:
    def test_acyclic_constraint_filtering(self):
        tn = TrustNetwork()
        tn.add_trust("x", "filter", priority=2)
        tn.add_trust("x", "source", priority=1)
        tn.set_explicit_belief("filter", BeliefSet.from_negatives(["a"]))
        tn.set_explicit_belief("source", "a")
        for paradigm in Paradigm:
            solutions = enumerate_constrained_solutions(tn, paradigm)
            assert len(solutions) == 1
            assert solutions[0]["x"].positive_value is None

    def test_without_constraints_positive_results_match_plain_enumeration(
        self, oscillator_network
    ):
        plain = possible_values_bruteforce(oscillator_network)
        for paradigm in Paradigm:
            constrained = constrained_possible_positive(oscillator_network, paradigm)
            for user in oscillator_network.users:
                assert constrained[user] == plain[user], (paradigm, user)

    def test_certain_positive_helper(self, simple_network):
        certain = constrained_certain_positive(simple_network, Paradigm.SKEPTIC)
        assert certain["x1"] == frozenset({"v"})
        assert certain["x3"] == frozenset({"w"})

    def test_ties_rejected_with_constraints(self):
        tn = TrustNetwork(mappings=[("a", 1, "x"), ("b", 1, "x")])
        tn.set_explicit_belief("a", "v")
        with pytest.raises(NetworkError):
            enumerate_constrained_solutions(tn, Paradigm.SKEPTIC)

    def test_skeptic_cycle_admits_bottom_solution(self):
        # Documented deviation (DESIGN.md): Definition 3.3 admits a solution
        # in which a cycle collectively rejects the incoming value based on a
        # constraint arriving over a non-preferred edge; Algorithm 2 reports
        # the positive value as certain, the definition-level oracle does not.
        tn = TrustNetwork()
        tn.add_trust("x1", "x2", priority=2)
        tn.add_trust("x1", "x3", priority=1)
        tn.add_trust("x2", "x1", priority=2)
        tn.add_trust("x2", "x4", priority=1)
        tn.set_explicit_belief("x3", "v")
        tn.set_explicit_belief("x4", BeliefSet.from_negatives(["v"]))
        solutions = enumerate_constrained_solutions(tn, Paradigm.SKEPTIC)
        kinds = {
            (solution["x1"].positive_value, solution["x1"].is_bottom)
            for solution in solutions
        }
        assert ("v", False) in kinds
        assert (None, True) in kinds
        # Possible positive beliefs still agree with Algorithm 2.
        assert constrained_possible_positive(tn, Paradigm.SKEPTIC)["x1"] == frozenset(
            {"v"}
        )
