"""Tests for the high-level constrained resolution API (Section 3)."""

from __future__ import annotations

import pytest

from repro.core.beliefs import Belief, BeliefSet, Paradigm
from repro.core.constraints import (
    associativity_example,
    normal_form,
    preferred_union,
    resolve_with_constraints,
)
from repro.core.errors import ParadigmError
from repro.core.network import TrustNetwork


class TestFunctionalAlgebra:
    def test_normal_form_delegates_to_paradigm(self):
        beliefs = BeliefSet.from_beliefs([Belief.positive("a"), Belief.negative("b")])
        assert normal_form(beliefs, "A") == BeliefSet.from_positive("a")
        assert normal_form(beliefs, "E") == beliefs
        assert normal_form(beliefs, "S") == BeliefSet.skeptic_positive("a")

    def test_preferred_union_without_paradigm_is_plain(self):
        merged = preferred_union(
            BeliefSet.from_negatives(["a"]), BeliefSet.from_positive("b")
        )
        assert merged.positive_value == "b" and merged.rejects("a")

    def test_preferred_union_with_paradigm(self):
        merged = preferred_union(
            BeliefSet.from_negatives(["a"]), BeliefSet.from_positive("b"), "A"
        )
        assert merged == BeliefSet.from_positive("b")

    def test_associativity_example_matches_paper(self):
        b1, b2 = associativity_example(Paradigm.AGNOSTIC)
        assert b1 == BeliefSet.from_negatives(["a"])
        assert b2 == BeliefSet.from_positive("b")
        b1, b2 = associativity_example(Paradigm.ECLECTIC)
        assert b1 == BeliefSet.from_negatives(["a"])
        assert b2.positive_value == "b" and b2.rejects("a")
        b1, b2 = associativity_example(Paradigm.SKEPTIC)
        assert b1 == b2


class TestDispatch:
    def test_acyclic_any_paradigm(self, simple_network):
        for paradigm in Paradigm:
            resolution = resolve_with_constraints(simple_network, paradigm)
            assert resolution.is_unique
            assert resolution.certain_positive_value("x1") == "v"
            assert resolution.possible_positive_values("x1") == frozenset({"v"})

    def test_cyclic_skeptic_uses_algorithm2(self, oscillator_network):
        resolution = resolve_with_constraints(oscillator_network, Paradigm.SKEPTIC)
        assert not resolution.is_unique
        assert resolution.possible_positive_values("x1") == frozenset({"v", "w"})
        assert resolution.certain_positive_values("x1") == frozenset()
        assert resolution.belief_set("x1") is None

    def test_cyclic_agnostic_and_eclectic_refused(self, oscillator_network):
        for paradigm in (Paradigm.AGNOSTIC, Paradigm.ECLECTIC):
            with pytest.raises(ParadigmError):
                resolve_with_constraints(oscillator_network, paradigm)

    def test_possible_beliefs_materialize_constraints(self):
        tn = TrustNetwork()
        tn.add_trust("x", "filter", priority=2)
        tn.add_trust("x", "source", priority=1)
        tn.set_explicit_belief("filter", BeliefSet.from_negatives(["bad"]))
        tn.set_explicit_belief("source", "good")
        eclectic = resolve_with_constraints(tn, Paradigm.ECLECTIC)
        beliefs = eclectic.possible_beliefs("x")
        assert Belief.positive("good") in beliefs
        assert Belief.negative("bad") in beliefs
        skeptic = resolve_with_constraints(tn, Paradigm.SKEPTIC)
        assert Belief.positive("good") in skeptic.possible_beliefs("x")

    def test_certain_beliefs_for_unique_solutions_equal_possible(self, simple_network):
        resolution = resolve_with_constraints(simple_network, Paradigm.ECLECTIC)
        assert resolution.certain_beliefs("x1") == resolution.possible_beliefs("x1")
