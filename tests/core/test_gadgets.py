"""Tests for the Boolean gadgets and the CNF SAT reduction (Theorem 3.4)."""

from __future__ import annotations

import pytest

from repro.core.beliefs import Paradigm
from repro.core.errors import NetworkError
from repro.core.gadgets import (
    LEVEL_ENCODING,
    build_gate_test_network,
    cnf_is_satisfiable_directly,
    cnf_is_satisfiable_via_trust_network,
    encode_cnf,
)

PARADIGMS = (Paradigm.AGNOSTIC, Paradigm.ECLECTIC)


def gate_truth_table(gadget, paradigm):
    """Map each Boolean input assignment to the gate's output positive value."""
    table = {}
    for assignment, solution in gadget.enumerate_solutions(paradigm):
        key = tuple(sorted(assignment.items()))
        table[key] = solution[gadget.output].positive_value
    return table


class TestGates:
    @pytest.mark.parametrize("paradigm", PARADIGMS)
    def test_not_gate(self, paradigm):
        gadget = build_gate_test_network("not")
        table = gate_truth_table(gadget, paradigm)
        # Level-2 encoding: d = true, c = false; NOT flips the input.
        assert table[(("X", False),)] == "d"
        assert table[(("X", True),)] == "c"

    @pytest.mark.parametrize("paradigm", PARADIGMS)
    def test_pass_through_gate(self, paradigm):
        gadget = build_gate_test_network("pass")
        table = gate_truth_table(gadget, paradigm)
        assert table[(("X", False),)] == "c"
        assert table[(("X", True),)] == "d"

    @pytest.mark.parametrize("paradigm", PARADIGMS)
    def test_or_gate(self, paradigm):
        gadget = build_gate_test_network("or")
        table = gate_truth_table(gadget, paradigm)
        for key, output in table.items():
            inputs = dict(key)
            expected_true = any(inputs.values())
            # Level-3 encoding: d = true, e = false.
            assert output == ("d" if expected_true else "e"), key

    def test_not_gate_breaks_under_skeptic(self):
        # The hardness gadgets rely on blocked values leaving room for other
        # positives; under Skeptic a positive carries ⊥-like constraints and
        # the gate no longer computes NOT (this is why Skeptic is tractable).
        gadget = build_gate_test_network("not")
        table = gate_truth_table(gadget, Paradigm.SKEPTIC)
        assert table != {(("X", False),): "d", (("X", True),): "c"}

    def test_unknown_gate_rejected(self):
        with pytest.raises(NetworkError):
            build_gate_test_network("xor")


class TestCnfEncoding:
    SATISFIABLE = [
        [[("x1", True)]],
        [[("x1", True), ("x2", False)], [("x2", True), ("x3", True)]],
        [[("x1", True), ("x2", True)], [("x1", False), ("x2", False)]],
        [[("x1", False)], [("x2", True)], [("x1", False), ("x2", True)]],
    ]
    UNSATISFIABLE = [
        [[("x1", True)], [("x1", False)]],
        [
            [("x1", True), ("x2", True)],
            [("x1", True), ("x2", False)],
            [("x1", False), ("x2", True)],
            [("x1", False), ("x2", False)],
        ],
    ]

    @pytest.mark.parametrize("formula", SATISFIABLE)
    @pytest.mark.parametrize("paradigm", PARADIGMS)
    def test_satisfiable_formulas(self, formula, paradigm):
        assert cnf_is_satisfiable_directly(formula)
        assert cnf_is_satisfiable_via_trust_network(formula, paradigm)

    @pytest.mark.parametrize("formula", UNSATISFIABLE)
    @pytest.mark.parametrize("paradigm", PARADIGMS)
    def test_unsatisfiable_formulas(self, formula, paradigm):
        assert not cnf_is_satisfiable_directly(formula)
        assert not cnf_is_satisfiable_via_trust_network(formula, paradigm)

    def test_reduction_matches_brute_force_on_random_formulas(self):
        import random

        rng = random.Random(5)
        variables = ["x1", "x2", "x3"]
        for _ in range(6):
            formula = []
            for _ in range(rng.randint(1, 3)):
                clause = [
                    (rng.choice(variables), rng.choice([True, False]))
                    for _ in range(rng.randint(1, 3))
                ]
                formula.append(clause)
            expected = cnf_is_satisfiable_directly(formula)
            assert cnf_is_satisfiable_via_trust_network(formula, "A") == expected

    def test_unsatisfiable_formula_makes_false_output_certain(self):
        formula = [[("x1", True)], [("x1", False)]]
        gadget = encode_cnf(formula)
        outputs = gadget.possible_output_values(Paradigm.AGNOSTIC)
        assert LEVEL_ENCODING[4][True] not in outputs
        assert outputs == frozenset({LEVEL_ENCODING[4][False]})

    def test_encoder_validates_input(self):
        with pytest.raises(NetworkError):
            encode_cnf([])
        with pytest.raises(NetworkError):
            encode_cnf([[]])

    def test_encoded_network_is_binary(self):
        gadget = encode_cnf([[("x1", True), ("x2", False)]])
        assert gadget.network.is_binary()
