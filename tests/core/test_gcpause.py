"""The shared GC pause must restore the collector to its entry state."""

from __future__ import annotations

import gc

import pytest

from repro.core.gcpause import paused_gc
from repro.core.network import TrustNetwork
from repro.core.resolution import resolve
from repro.core.skeptic import resolve_skeptic


@pytest.fixture(autouse=True)
def _gc_enabled_afterwards():
    """Whatever a test does, leave the interpreter's collector enabled."""
    yield
    gc.enable()


class TestPausedGc:
    def test_disables_inside_and_restores_enabled(self):
        gc.enable()
        with paused_gc():
            assert not gc.isenabled()
        assert gc.isenabled()

    def test_preserves_disabled_state(self):
        """The original bug: a caller running with GC off must not find it
        re-enabled after the batch."""
        gc.disable()
        with paused_gc():
            assert not gc.isenabled()
        assert not gc.isenabled()

    def test_restores_on_error(self):
        gc.enable()
        with pytest.raises(RuntimeError):
            with paused_gc():
                raise RuntimeError("mid-batch failure")
        assert gc.isenabled()

    def test_nested_pauses_compose(self):
        gc.enable()
        with paused_gc():
            with paused_gc():
                assert not gc.isenabled()
            assert not gc.isenabled()
        assert gc.isenabled()


def _binary_chain() -> TrustNetwork:
    tn = TrustNetwork()
    tn.add_trust("b", "a", priority=1)
    tn.set_explicit_belief("a", "v")
    return tn


class TestResolversRestoreGcState:
    @pytest.mark.parametrize("resolver", [resolve, resolve_skeptic])
    def test_resolver_leaves_disabled_gc_disabled(self, resolver):
        gc.disable()
        resolver(_binary_chain())
        assert not gc.isenabled()

    @pytest.mark.parametrize("resolver", [resolve, resolve_skeptic])
    def test_resolver_leaves_enabled_gc_enabled(self, resolver):
        gc.enable()
        resolver(_binary_chain())
        assert gc.isenabled()
