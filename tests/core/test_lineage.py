"""Tests for lineage retrieval (Section 2.5, "Retrieving lineage")."""

from __future__ import annotations

import pytest

from repro.core.network import TrustNetwork
from repro.core.resolution import resolve


class TestLineage:
    def test_lineage_of_explicit_belief_is_a_single_step(self):
        tn = TrustNetwork(explicit_beliefs={"a": "v"})
        result = resolve(tn)
        path = result.trace_lineage("a", "v")
        assert len(path) == 1
        assert path[0].user == "a" and path[0].source is None

    def test_lineage_follows_preferred_chain(self):
        tn = TrustNetwork()
        tn.add_trust("b", "a", priority=1)
        tn.add_trust("c", "b", priority=1)
        tn.set_explicit_belief("a", "v")
        result = resolve(tn)
        path = result.trace_lineage("c", "v")
        assert [step.user for step in path] == ["c", "b", "a"]
        assert path[-1].source is None
        assert all(step.value == "v" for step in path)

    def test_lineage_through_scc_flooding(self, oscillator_network):
        result = resolve(oscillator_network)
        for value, origin in (("v", "x3"), ("w", "x4")):
            path = result.trace_lineage("x1", value)
            assert path[0].user == "x1"
            assert path[-1].user == origin
            assert path[-1].source is None

    def test_every_possible_value_has_a_lineage(self, oscillator_network):
        result = resolve(oscillator_network)
        for user in oscillator_network.users:
            for value in result.possible_values(user):
                path = result.trace_lineage(user, value)
                assert path, (user, value)
                assert path[-1].source is None

    def test_lineage_of_impossible_value_raises(self, oscillator_network):
        result = resolve(oscillator_network)
        with pytest.raises(KeyError):
            result.trace_lineage("x1", "nonexistent")

    def test_lineage_terminates_on_conflicting_network(self):
        tn = TrustNetwork()
        tn.add_trust("x", "a", priority=1)
        tn.add_trust("x", "b", priority=1)
        tn.add_trust("y", "x", priority=1)
        tn.set_explicit_belief("a", "va")
        tn.set_explicit_belief("b", "vb")
        result = resolve(tn)
        for value in ("va", "vb"):
            path = result.trace_lineage("y", value)
            assert path[-1].user in {"a", "b"}
            assert path[-1].value == value
