"""Unit tests for trust networks and priority trust mappings."""

from __future__ import annotations

import pytest

from repro.core.beliefs import Belief, BeliefSet
from repro.core.errors import NetworkError, NotBinaryError
from repro.core.network import BinaryTrustNetwork, TrustMapping, TrustNetwork


class TestConstruction:
    def test_add_mapping_creates_users(self):
        tn = TrustNetwork()
        tn.add_mapping(("bob", 100, "alice"))
        assert {"alice", "bob"} <= set(tn.users)
        assert tn.mappings == (TrustMapping("bob", 100, "alice"),)

    def test_add_trust_convenience(self):
        tn = TrustNetwork()
        mapping = tn.add_trust("alice", "bob", priority=7)
        assert mapping == TrustMapping("bob", 7, "alice")

    def test_self_trust_rejected(self):
        tn = TrustNetwork()
        with pytest.raises(NetworkError):
            tn.add_trust("alice", "alice", priority=1)

    def test_constructor_accepts_tuples_and_beliefs(self):
        tn = TrustNetwork(
            users=["zoe"],
            mappings=[("bob", 10, "alice")],
            explicit_beliefs={"bob": "cow", "zoe": BeliefSet.from_negatives(["x"])},
        )
        assert tn.explicit_positive_value("bob") == "cow"
        assert tn.explicit_belief("zoe").rejects("x")
        assert "zoe" in tn

    def test_explicit_belief_coercion_from_belief_object(self):
        tn = TrustNetwork()
        tn.set_explicit_belief("a", Belief.negative("v"))
        assert tn.explicit_belief("a").rejects("v")

    def test_remove_explicit_belief(self):
        tn = TrustNetwork(explicit_beliefs={"a": "v"})
        tn.remove_explicit_belief("a")
        assert not tn.has_explicit_belief("a")
        tn.remove_explicit_belief("a")  # idempotent

    def test_size_counts_users_plus_mappings(self):
        tn = TrustNetwork(mappings=[("a", 1, "b"), ("b", 1, "c")])
        assert tn.size == 3 + 2

    def test_copy_is_independent(self):
        tn = TrustNetwork(mappings=[("a", 1, "b")], explicit_beliefs={"a": "v"})
        clone = tn.copy()
        clone.add_trust("c", "a", priority=5)
        clone.set_explicit_belief("b", "w")
        assert len(tn.mappings) == 1
        assert not tn.has_explicit_belief("b")


class TestMutators:
    def test_remove_mapping_exact(self):
        tn = TrustNetwork(mappings=[("p", 1, "x"), ("p", 2, "x")])
        tn.remove_mapping(("p", 1, "x"))
        assert tn.mappings == (TrustMapping("p", 2, "x"),)
        assert "x" in tn and "p" in tn  # endpoints survive

    def test_remove_mapping_missing_raises(self):
        tn = TrustNetwork(mappings=[("p", 1, "x")])
        with pytest.raises(NetworkError):
            tn.remove_mapping(("p", 9, "x"))

    def test_remove_trust_drops_all_parallel_edges(self):
        tn = TrustNetwork(mappings=[("p", 1, "x"), ("p", 2, "x"), ("q", 3, "x")])
        removed = tn.remove_trust("x", "p")
        assert {m.priority for m in removed} == {1, 2}
        assert tn.parents("x") == ("q",)

    def test_remove_trust_missing_raises(self):
        tn = TrustNetwork(mappings=[("p", 1, "x")])
        with pytest.raises(NetworkError):
            tn.remove_trust("x", "q")

    def test_remove_trust_invalidates_preferred_cache(self):
        tn = TrustNetwork(mappings=[("hi", 2, "x"), ("lo", 1, "x")])
        assert tn.preferred_parent_map()["x"] == "hi"  # warm the cache
        tn.remove_trust("x", "hi")
        assert tn.preferred_parent_map()["x"] == "lo"
        assert tn.incoming_map()["x"] == (TrustMapping("lo", 1, "x"),)

    def test_set_priority_replaces_edge_in_place(self):
        tn = TrustNetwork(mappings=[("hi", 2, "x"), ("lo", 1, "x")])
        assert tn.preferred_parent("x") == "hi"
        tn.set_priority("x", "lo", priority=5)
        assert tn.preferred_parent("x") == "lo"
        assert [m.priority for m in tn.incoming("x")] == [2, 5]
        assert len(tn.mappings) == 2

    def test_set_priority_same_value_is_noop(self):
        tn = TrustNetwork(mappings=[("p", 3, "x")])
        mapping = tn.set_priority("x", "p", priority=3)
        assert mapping == TrustMapping("p", 3, "x")

    def test_set_priority_missing_or_ambiguous_raises(self):
        tn = TrustNetwork(mappings=[("p", 1, "x"), ("p", 2, "x")])
        with pytest.raises(NetworkError):
            tn.set_priority("x", "q", priority=1)
        with pytest.raises(NetworkError):
            tn.set_priority("x", "p", priority=9)

    def test_remove_user_drops_edges_and_belief(self):
        tn = TrustNetwork(
            mappings=[("r", 1, "a"), ("a", 1, "b")], explicit_beliefs={"r": "v"}
        )
        tn.remove_user("a")
        assert "a" not in tn
        assert tn.mappings == ()
        assert tn.has_explicit_belief("r")
        tn.remove_user("r")
        assert not tn.has_explicit_belief("r")
        assert tn.users == frozenset({"b"})

    def test_remove_user_unknown_raises(self):
        tn = TrustNetwork(users=["a"])
        with pytest.raises(NetworkError):
            tn.remove_user("zz")

    def test_remove_user_invalidates_adjacency_caches(self):
        tn = TrustNetwork(mappings=[("r", 1, "a"), ("r", 1, "b")])
        assert set(tn.outgoing_map()["r"]) == {
            TrustMapping("r", 1, "a"),
            TrustMapping("r", 1, "b"),
        }
        tn.remove_user("b")
        assert tn.outgoing_map()["r"] == (TrustMapping("r", 1, "a"),)
        assert tn.roots() == frozenset({"r"})
        assert "b" not in tn.preferred_parent_map()

    def test_mutators_invalidate_binary_cache(self):
        tn = TrustNetwork(mappings=[("a", 1, "x"), ("b", 2, "x"), ("c", 3, "x")])
        assert not tn.is_binary()
        tn.remove_trust("x", "c")
        assert tn.is_binary()
        tn.add_trust("x", "c", priority=3)
        assert not tn.is_binary()

    @pytest.mark.parametrize("seed", range(25))
    def test_patched_caches_match_a_fresh_rebuild(self, seed):
        """Mutators patch warm caches in place; after every op the cached
        maps must equal those of a freshly constructed network (the oracle
        cannot share the caches under test, hence the rebuild)."""
        import random

        rng = random.Random(seed)
        tn = TrustNetwork(users=[f"u{i}" for i in range(6)])
        for _ in range(40):
            # Keep all caches warm so every mutation exercises the patches.
            tn.incoming_map(), tn.outgoing_map(), tn.preferred_parent_map()
            tn.is_binary()
            users = sorted(tn.users, key=str)
            op = rng.random()
            try:
                if op < 0.35:
                    child, parent = rng.sample(users, 2)
                    tn.add_trust(child, parent, rng.randint(1, 4))
                elif op < 0.55 and tn.mappings:
                    edge = rng.choice(tn.mappings)
                    tn.remove_trust(edge.child, edge.parent)
                elif op < 0.7 and tn.mappings:
                    edge = rng.choice(tn.mappings)
                    tn.set_priority(edge.child, edge.parent, rng.randint(1, 4))
                elif op < 0.8:
                    tn.add_user(f"extra{rng.randint(0, 9)}")
                elif op < 0.9 and len(users) > 2:
                    tn.remove_user(rng.choice(users))
                else:
                    tn.set_explicit_belief(rng.choice(users), "v")
            except NetworkError:
                continue  # ambiguous parallel edge etc. — state unchanged
            fresh = TrustNetwork(
                users=tn.users,
                mappings=tn.mappings,
                explicit_beliefs=tn.explicit_beliefs,
            )
            assert tn.incoming_map() == fresh.incoming_map()
            assert tn.outgoing_map() == fresh.outgoing_map()
            assert tn.preferred_parent_map() == fresh.preferred_parent_map()
            assert tn.is_binary() == fresh.is_binary()


class TestStructureQueries:
    def test_parents_sorted_by_priority(self):
        tn = TrustNetwork(mappings=[("low", 1, "x"), ("high", 9, "x"), ("mid", 5, "x")])
        assert tn.parents("x") == ("high", "mid", "low")

    def test_children_and_outgoing(self):
        tn = TrustNetwork(mappings=[("p", 1, "a"), ("p", 2, "b")])
        assert set(tn.children("p")) == {"a", "b"}
        assert len(tn.outgoing("p")) == 2

    def test_roots(self):
        tn = TrustNetwork(mappings=[("r", 1, "x")])
        assert tn.roots() == frozenset({"r"})

    def test_preferred_parent_single(self):
        tn = TrustNetwork(mappings=[("p", 3, "x")])
        assert tn.preferred_parent("x") == "p"

    def test_preferred_parent_strict_priority(self):
        tn = TrustNetwork(mappings=[("lo", 1, "x"), ("hi", 2, "x")])
        assert tn.preferred_parent("x") == "hi"

    def test_preferred_parent_none_on_tie(self):
        tn = TrustNetwork(mappings=[("a", 2, "x"), ("b", 2, "x")])
        assert tn.preferred_parent("x") is None

    def test_preferred_parent_none_without_parents(self):
        tn = TrustNetwork(users=["x"])
        assert tn.preferred_parent("x") is None

    def test_preferred_and_non_preferred_edges_partition_mappings(self):
        tn = TrustNetwork(
            mappings=[("hi", 2, "x"), ("lo", 1, "x"), ("a", 1, "y"), ("b", 1, "y")]
        )
        preferred = tn.preferred_edges()
        non_preferred = tn.non_preferred_edges()
        assert len(preferred) + len(non_preferred) == len(tn.mappings)
        assert TrustMapping("hi", 2, "x") in preferred
        assert TrustMapping("lo", 1, "x") in non_preferred
        assert TrustMapping("a", 1, "y") in non_preferred

    def test_is_binary(self, oscillator_network):
        assert oscillator_network.is_binary()
        tn = TrustNetwork(mappings=[("a", 1, "x"), ("b", 2, "x"), ("c", 3, "x")])
        assert not tn.is_binary()

    def test_is_binary_false_for_non_root_belief(self):
        tn = TrustNetwork(mappings=[("a", 1, "x")], explicit_beliefs={"x": "v"})
        assert not tn.is_binary()

    def test_is_acyclic(self, simple_network, oscillator_network):
        assert simple_network.is_acyclic()
        assert not oscillator_network.is_acyclic()

    def test_to_digraph_has_priorities(self):
        tn = TrustNetwork(mappings=[("p", 7, "x")])
        graph = tn.to_digraph()
        assert graph.edges[("p", "x")]["priority"] == 7

    def test_reachable_from_roots_with_beliefs(self):
        tn = TrustNetwork(
            mappings=[("r", 1, "a"), ("a", 1, "b"), ("other", 1, "c")],
            explicit_beliefs={"r": "v"},
        )
        reachable = tn.reachable_from_roots_with_beliefs()
        assert reachable == frozenset({"r", "a", "b"})


class TestBinaryTrustNetwork:
    def test_validate_accepts_binary(self, oscillator_network):
        btn = BinaryTrustNetwork.from_network(oscillator_network)
        assert btn.is_binary()

    def test_validate_rejects_three_parents(self):
        tn = TrustNetwork(mappings=[("a", 1, "x"), ("b", 2, "x"), ("c", 3, "x")])
        with pytest.raises(NotBinaryError):
            BinaryTrustNetwork.from_network(tn)

    def test_validate_rejects_belief_on_non_root(self):
        tn = TrustNetwork(mappings=[("a", 1, "x")], explicit_beliefs={"x": "v"})
        with pytest.raises(NotBinaryError):
            BinaryTrustNetwork.from_network(tn)
