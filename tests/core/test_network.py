"""Unit tests for trust networks and priority trust mappings."""

from __future__ import annotations

import pytest

from repro.core.beliefs import Belief, BeliefSet
from repro.core.errors import NetworkError, NotBinaryError
from repro.core.network import BinaryTrustNetwork, TrustMapping, TrustNetwork


class TestConstruction:
    def test_add_mapping_creates_users(self):
        tn = TrustNetwork()
        tn.add_mapping(("bob", 100, "alice"))
        assert {"alice", "bob"} <= set(tn.users)
        assert tn.mappings == (TrustMapping("bob", 100, "alice"),)

    def test_add_trust_convenience(self):
        tn = TrustNetwork()
        mapping = tn.add_trust("alice", "bob", priority=7)
        assert mapping == TrustMapping("bob", 7, "alice")

    def test_self_trust_rejected(self):
        tn = TrustNetwork()
        with pytest.raises(NetworkError):
            tn.add_trust("alice", "alice", priority=1)

    def test_constructor_accepts_tuples_and_beliefs(self):
        tn = TrustNetwork(
            users=["zoe"],
            mappings=[("bob", 10, "alice")],
            explicit_beliefs={"bob": "cow", "zoe": BeliefSet.from_negatives(["x"])},
        )
        assert tn.explicit_positive_value("bob") == "cow"
        assert tn.explicit_belief("zoe").rejects("x")
        assert "zoe" in tn

    def test_explicit_belief_coercion_from_belief_object(self):
        tn = TrustNetwork()
        tn.set_explicit_belief("a", Belief.negative("v"))
        assert tn.explicit_belief("a").rejects("v")

    def test_remove_explicit_belief(self):
        tn = TrustNetwork(explicit_beliefs={"a": "v"})
        tn.remove_explicit_belief("a")
        assert not tn.has_explicit_belief("a")
        tn.remove_explicit_belief("a")  # idempotent

    def test_size_counts_users_plus_mappings(self):
        tn = TrustNetwork(mappings=[("a", 1, "b"), ("b", 1, "c")])
        assert tn.size == 3 + 2

    def test_copy_is_independent(self):
        tn = TrustNetwork(mappings=[("a", 1, "b")], explicit_beliefs={"a": "v"})
        clone = tn.copy()
        clone.add_trust("c", "a", priority=5)
        clone.set_explicit_belief("b", "w")
        assert len(tn.mappings) == 1
        assert not tn.has_explicit_belief("b")


class TestStructureQueries:
    def test_parents_sorted_by_priority(self):
        tn = TrustNetwork(mappings=[("low", 1, "x"), ("high", 9, "x"), ("mid", 5, "x")])
        assert tn.parents("x") == ("high", "mid", "low")

    def test_children_and_outgoing(self):
        tn = TrustNetwork(mappings=[("p", 1, "a"), ("p", 2, "b")])
        assert set(tn.children("p")) == {"a", "b"}
        assert len(tn.outgoing("p")) == 2

    def test_roots(self):
        tn = TrustNetwork(mappings=[("r", 1, "x")])
        assert tn.roots() == frozenset({"r"})

    def test_preferred_parent_single(self):
        tn = TrustNetwork(mappings=[("p", 3, "x")])
        assert tn.preferred_parent("x") == "p"

    def test_preferred_parent_strict_priority(self):
        tn = TrustNetwork(mappings=[("lo", 1, "x"), ("hi", 2, "x")])
        assert tn.preferred_parent("x") == "hi"

    def test_preferred_parent_none_on_tie(self):
        tn = TrustNetwork(mappings=[("a", 2, "x"), ("b", 2, "x")])
        assert tn.preferred_parent("x") is None

    def test_preferred_parent_none_without_parents(self):
        tn = TrustNetwork(users=["x"])
        assert tn.preferred_parent("x") is None

    def test_preferred_and_non_preferred_edges_partition_mappings(self):
        tn = TrustNetwork(
            mappings=[("hi", 2, "x"), ("lo", 1, "x"), ("a", 1, "y"), ("b", 1, "y")]
        )
        preferred = tn.preferred_edges()
        non_preferred = tn.non_preferred_edges()
        assert len(preferred) + len(non_preferred) == len(tn.mappings)
        assert TrustMapping("hi", 2, "x") in preferred
        assert TrustMapping("lo", 1, "x") in non_preferred
        assert TrustMapping("a", 1, "y") in non_preferred

    def test_is_binary(self, oscillator_network):
        assert oscillator_network.is_binary()
        tn = TrustNetwork(mappings=[("a", 1, "x"), ("b", 2, "x"), ("c", 3, "x")])
        assert not tn.is_binary()

    def test_is_binary_false_for_non_root_belief(self):
        tn = TrustNetwork(mappings=[("a", 1, "x")], explicit_beliefs={"x": "v"})
        assert not tn.is_binary()

    def test_is_acyclic(self, simple_network, oscillator_network):
        assert simple_network.is_acyclic()
        assert not oscillator_network.is_acyclic()

    def test_to_digraph_has_priorities(self):
        tn = TrustNetwork(mappings=[("p", 7, "x")])
        graph = tn.to_digraph()
        assert graph.edges[("p", "x")]["priority"] == 7

    def test_reachable_from_roots_with_beliefs(self):
        tn = TrustNetwork(
            mappings=[("r", 1, "a"), ("a", 1, "b"), ("other", 1, "c")],
            explicit_beliefs={"r": "v"},
        )
        reachable = tn.reachable_from_roots_with_beliefs()
        assert reachable == frozenset({"r", "a", "b"})


class TestBinaryTrustNetwork:
    def test_validate_accepts_binary(self, oscillator_network):
        btn = BinaryTrustNetwork.from_network(oscillator_network)
        assert btn.is_binary()

    def test_validate_rejects_three_parents(self):
        tn = TrustNetwork(mappings=[("a", 1, "x"), ("b", 2, "x"), ("c", 3, "x")])
        with pytest.raises(NotBinaryError):
            BinaryTrustNetwork.from_network(tn)

    def test_validate_rejects_belief_on_non_root(self):
        tn = TrustNetwork(mappings=[("a", 1, "x")], explicit_beliefs={"x": "v"})
        with pytest.raises(NotBinaryError):
            BinaryTrustNetwork.from_network(tn)
