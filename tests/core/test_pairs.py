"""Tests for possible pairs, agreement checking and consensus values."""

from __future__ import annotations

import pytest

from repro.core.network import TrustNetwork
from repro.core.pairs import (
    agreement_pairs,
    consensus_values,
    possible_pairs,
    possible_pairs_incremental,
)


class TestPossiblePairs:
    def test_oscillator_pairs_exclude_mixed_combinations(self, oscillator_network):
        # Section 2.5: poss(x1, x2) contains (v, v) and (w, w) but neither
        # (v, w) nor (w, v).
        pairs = possible_pairs(oscillator_network)
        assert pairs[("x1", "x2")] == frozenset({("v", "v"), ("w", "w")})
        assert pairs[("x1", "x3")] == frozenset({("v", "v"), ("w", "v")})

    def test_pairs_are_symmetric_transposes(self, oscillator_network):
        pairs = possible_pairs(oscillator_network)
        for (x, y), values in pairs.items():
            assert pairs[(y, x)] == frozenset({(w, v) for v, w in values})

    def test_marginals_match_possible_values(self, oscillator_network):
        from repro.core.resolution import resolve

        pairs = possible_pairs(oscillator_network)
        result = resolve(oscillator_network)
        for user in oscillator_network.users:
            marginal = {v for v, _ in pairs[(user, user)]}
            assert marginal == set(result.possible_values(user))

    def test_incremental_pairs_match_bruteforce_on_oscillator(self, oscillator_network):
        exact = possible_pairs(oscillator_network)
        fast = possible_pairs_incremental(oscillator_network)
        for key, values in exact.items():
            assert fast[key] == values, key

    def test_incremental_pairs_match_bruteforce_on_simple_network(self, simple_network):
        exact = possible_pairs(simple_network)
        fast = possible_pairs_incremental(simple_network)
        for key, values in exact.items():
            assert fast[key] == values, key

    def test_incremental_pairs_on_shared_flooded_component(self):
        # A 3-cycle fed by two conflicting roots: different nodes of the
        # component can take different values in the same solution.
        tn = TrustNetwork()
        tn.add_trust("a", "b", priority=1)
        tn.add_trust("b", "c", priority=1)
        tn.add_trust("c", "a", priority=1)
        tn.add_trust("a", "r1", priority=1)
        tn.add_trust("c", "r2", priority=1)
        tn.set_explicit_belief("r1", "v")
        tn.set_explicit_belief("r2", "w")
        exact = possible_pairs(tn)
        fast = possible_pairs_incremental(tn)
        for key in exact:
            assert fast[key] == exact[key], key


class TestAgreementAndConsensus:
    def test_agreement_pairs_on_oscillator(self, oscillator_network):
        agreeing = agreement_pairs(oscillator_network)
        # x1 and x2 always hold the same value (either both v or both w).
        assert ("x1", "x2") in agreeing
        assert ("x2", "x1") in agreeing
        # x1 and x3 disagree in the solution where x1 = w.
        assert ("x1", "x3") not in agreeing

    def test_agreement_pairs_on_simple_network(self, simple_network):
        agreeing = agreement_pairs(simple_network)
        assert ("x1", "x2") in agreeing
        assert ("x1", "x3") not in agreeing

    def test_consensus_values_oscillator(self, oscillator_network):
        # x1 and x2 agree on both v and w: whenever one holds the value, so
        # does the other.
        assert consensus_values(oscillator_network, "x1", "x2") == frozenset({"v", "w"})
        # x1 and x3: x3 always holds v but x1 sometimes holds w, so v is not a
        # consensus value; w is not either because x1 can hold w while x3 not.
        assert consensus_values(oscillator_network, "x1", "x3") == frozenset()

    def test_consensus_values_reuses_precomputed_pairs(self, oscillator_network):
        pairs = possible_pairs(oscillator_network)
        assert consensus_values(
            oscillator_network, "x1", "x2", pairs=pairs
        ) == frozenset({"v", "w"})
