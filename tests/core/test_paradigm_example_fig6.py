"""The Figure 6 example: one network, three paradigms, three different outcomes."""

from __future__ import annotations

import pytest

from repro.core.acyclic import resolve_acyclic
from repro.core.beliefs import Belief, BeliefSet, Paradigm
from repro.core.constraints import resolve_with_constraints
from repro.core.network import TrustNetwork


@pytest.fixture
def figure6_network() -> TrustNetwork:
    """Figure 6a: explicit beliefs {b-}, {a+}, {a-}, {b+}, {c+} and a chain of
    preferred edges x2→x3, x4→x5, x5→x7, x7→x9."""
    network = TrustNetwork()
    network.set_explicit_belief("x1", BeliefSet.from_negatives(["b"]))
    network.set_explicit_belief("x2", "a")
    network.set_explicit_belief("x4", BeliefSet.from_negatives(["a"]))
    network.set_explicit_belief("x6", "b")
    network.set_explicit_belief("x8", "c")
    network.add_trust("x3", "x2", priority=2)
    network.add_trust("x3", "x1", priority=1)
    network.add_trust("x5", "x4", priority=2)
    network.add_trust("x5", "x3", priority=1)
    network.add_trust("x7", "x5", priority=2)
    network.add_trust("x7", "x6", priority=1)
    network.add_trust("x9", "x7", priority=2)
    network.add_trust("x9", "x8", priority=1)
    return network


class TestFigure6:
    def test_network_is_acyclic_and_binary(self, figure6_network):
        assert figure6_network.is_acyclic()
        assert figure6_network.is_binary()

    def test_agnostic_solution(self, figure6_network):
        solution = resolve_acyclic(figure6_network, Paradigm.AGNOSTIC)
        assert solution["x3"] == BeliefSet.from_positive("a")
        assert solution["x5"] == BeliefSet.from_negatives(["a"])
        assert solution["x7"] == BeliefSet.from_positive("b")
        assert solution["x9"] == BeliefSet.from_positive("b")

    def test_eclectic_solution(self, figure6_network):
        solution = resolve_acyclic(figure6_network, Paradigm.ECLECTIC)
        assert solution["x3"].positive_value == "a"
        assert solution["x3"].rejects("b")
        assert solution["x5"].positive_value is None
        assert solution["x5"].rejects("a") and solution["x5"].rejects("b")
        # The constraint b- defined upstream reaches x7 and blocks b+.
        assert solution["x7"].positive_value is None
        assert solution["x7"].rejects("a") and solution["x7"].rejects("b")
        # x9 still accepts c+ under Eclectic ...
        assert solution["x9"].positive_value == "c"
        assert solution["x9"].rejects("a") and solution["x9"].rejects("b")

    def test_skeptic_solution(self, figure6_network):
        solution = resolve_acyclic(figure6_network, Paradigm.SKEPTIC)
        assert solution["x3"] == BeliefSet.skeptic_positive("a")
        assert solution["x5"].is_bottom
        assert solution["x7"].is_bottom
        # ... but under Skeptic x9 rejects c+ too and believes ⊥.
        assert solution["x9"].is_bottom

    def test_paradigms_collapse_without_constraints(self, figure6_network):
        # Removing the negative beliefs makes all three paradigms agree on the
        # positive values (Section 3.3).
        network = TrustNetwork(mappings=figure6_network.mappings)
        network.set_explicit_belief("x2", "a")
        network.set_explicit_belief("x6", "b")
        network.set_explicit_belief("x8", "c")
        positives = {}
        for paradigm in Paradigm:
            solution = resolve_acyclic(network, paradigm)
            positives[paradigm] = {
                user: solution[user].positive_value for user in network.users
            }
        assert positives[Paradigm.AGNOSTIC] == positives[Paradigm.ECLECTIC]
        assert positives[Paradigm.ECLECTIC] == positives[Paradigm.SKEPTIC]

    def test_resolve_with_constraints_dispatches_to_acyclic(self, figure6_network):
        resolution = resolve_with_constraints(figure6_network, Paradigm.ECLECTIC)
        assert resolution.is_unique
        assert resolution.certain_positive_value("x9") == "c"
        assert resolution.certain_positive_value("x7") is None
        skeptic = resolve_with_constraints(figure6_network, Paradigm.SKEPTIC)
        assert skeptic.certain_positive_value("x9") is None
