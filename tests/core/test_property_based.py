"""Property-based tests (hypothesis) for the core invariants.

The central cross-validation properties:

* Algorithm 1 computes exactly the possible values defined by Definition 2.4
  (checked against the brute-force oracle on random binary networks).
* Algorithm 1 agrees with the brave stable-model semantics of the translated
  logic program (Theorem 2.9).
* Binarization preserves the possible values of the original users
  (Proposition 2.8).
* The Skeptic preferred union is associative and idempotent-friendly
  (Section 3.3), and normal forms are idempotent for every paradigm.
"""

from __future__ import annotations

from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.core.beliefs import Belief, BeliefSet, Paradigm
from repro.core.errors import NetworkError
from repro.core.binarize import binarize
from repro.core.bruteforce import possible_values_bruteforce
from repro.core.network import TrustNetwork
from repro.core.resolution import resolve
from repro.core.skeptic import resolve_skeptic
from repro.logicprog.solver import solve_network_brave

from tests.conftest import random_binary_network

SLOW = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# ---------------------------------------------------------------------- #
# belief-set algebra                                                      #
# ---------------------------------------------------------------------- #

VALUES = st.sampled_from(["a", "b", "c", "d"])


@st.composite
def belief_sets(draw):
    kind = draw(st.integers(min_value=0, max_value=4))
    if kind == 0:
        return BeliefSet.empty()
    if kind == 1:
        return BeliefSet.from_positive(draw(VALUES))
    if kind == 2:
        values = draw(st.sets(VALUES, min_size=1, max_size=3))
        return BeliefSet.from_negatives(values)
    if kind == 3:
        return BeliefSet.bottom()
    return BeliefSet.skeptic_positive(draw(VALUES))


@given(belief_sets(), belief_sets(), belief_sets())
@settings(max_examples=200, deadline=None)
def test_skeptic_preferred_union_is_associative(x, y, z):
    left = x.preferred_union_sigma(y, "S").preferred_union_sigma(z, "S")
    right = x.preferred_union_sigma(y.preferred_union_sigma(z, "S"), "S")
    assert left == right


@given(belief_sets(), st.sampled_from(list(Paradigm)))
@settings(max_examples=200, deadline=None)
def test_normal_form_is_idempotent(beliefs, paradigm):
    once = beliefs.normalize(paradigm)
    assert once.normalize(paradigm) == once


@given(belief_sets(), belief_sets(), st.sampled_from(list(Paradigm)))
@settings(max_examples=200, deadline=None)
def test_preferred_union_keeps_first_argument_positive(x, y, paradigm):
    merged = x.preferred_union_sigma(y, paradigm)
    if x.positive_value is not None:
        assert merged.positive_value == x.positive_value


@given(belief_sets(), belief_sets())
@settings(max_examples=200, deadline=None)
def test_preferred_union_result_is_consistent(x, y):
    assert x.preferred_union(y).is_consistent()


# ---------------------------------------------------------------------- #
# resolution invariants on random binary networks                         #
# ---------------------------------------------------------------------- #


@given(st.integers(min_value=0, max_value=10_000))
@SLOW
def test_algorithm1_matches_definition_oracle(seed):
    network = random_binary_network(seed, n_nodes=7, n_values=2)
    expected = possible_values_bruteforce(network)
    result = resolve(network)
    for user in network.users:
        assert result.possible_values(user) == expected[user], (seed, user)


@given(st.integers(min_value=0, max_value=10_000))
@SLOW
def test_algorithm1_matches_logic_program_brave_semantics(seed):
    network = random_binary_network(seed, n_nodes=6, n_values=2)
    result = resolve(network)
    brave = solve_network_brave(network)
    for user in network.users:
        assert set(map(str, result.possible_values(user))) == set(
            brave.get(str(user), frozenset())
        ), (seed, user)


@given(st.integers(min_value=0, max_value=10_000))
@SLOW
def test_every_possible_value_has_a_lineage(seed):
    network = random_binary_network(seed, n_nodes=8, n_values=3)
    result = resolve(network)
    for user in network.users:
        for value in result.possible_values(user):
            path = result.trace_lineage(user, value)
            assert path[-1].source is None
            assert all(step.value == value for step in path)


@given(st.integers(min_value=0, max_value=10_000))
@SLOW
def test_certain_values_are_possible_and_unique(seed):
    network = random_binary_network(seed, n_nodes=8, n_values=3)
    result = resolve(network)
    for user in network.users:
        certain = result.certain_values(user)
        assert len(certain) <= 1
        assert certain <= result.possible_values(user)


@given(st.integers(min_value=0, max_value=10_000))
@SLOW
def test_skeptic_equals_algorithm1_without_constraints(seed):
    network = random_binary_network(seed, n_nodes=7, n_values=2)
    try:
        skeptic = resolve_skeptic(network)
    except NetworkError:
        # Networks with tied parents are outside Algorithm 2's scope.
        return
    reference = resolve(network)
    for user in network.users:
        assert skeptic.possible_positive_values(user) == reference.possible_values(
            user
        ), (seed, user)


# ---------------------------------------------------------------------- #
# engine equivalence on larger networks (unreachable nodes, tied parents) #
# ---------------------------------------------------------------------- #

# The incremental-SCC rewrite of Algorithms 1/2 must agree with the
# definition-level oracle on networks large enough to exercise component
# carving and re-condensation: up to ~12 nodes, with tied-priority parents
# (random_binary_network draws ties deliberately) and nodes unreachable
# from every explicit belief.

FEWER = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _larger_network(seed: int):
    network = random_binary_network(
        seed,
        n_nodes=12,
        n_values=2,
        edge_probability=0.5,
        belief_probability=0.85,
    )
    explicit = [
        user
        for user, belief in network.explicit_beliefs.items()
        if belief.positive_value is not None
    ]
    # Keep the exponential oracle tractable.
    assume(len(network.users) - len(explicit) <= 9)
    return network, explicit


@given(st.integers(min_value=0, max_value=10_000))
@FEWER
def test_algorithm1_matches_oracle_up_to_twelve_nodes(seed):
    network, explicit = _larger_network(seed)
    expected = possible_values_bruteforce(network)
    result = resolve(network)
    reachable = network.reachable_from_roots_with_beliefs()
    for user in network.users:
        assert result.possible_values(user) == expected[user], (seed, user)
        if user not in reachable:
            # Unreachable users have an undefined belief in every solution.
            assert result.possible_values(user) == frozenset(), (seed, user)
    # Every possible value must trace back to an explicit belief.
    for user in network.users:
        for value in result.possible_values(user):
            path = result.trace_lineage(user, value)
            assert path[-1].source is None
            assert path[-1].user in explicit
            assert all(step.value == value for step in path)


@given(st.integers(min_value=0, max_value=10_000))
@FEWER
def test_skeptic_matches_oracle_up_to_twelve_nodes(seed):
    network, _explicit = _larger_network(seed)
    try:
        skeptic = resolve_skeptic(network)
    except NetworkError:
        # Networks with tied parents are outside Algorithm 2's scope; ties
        # themselves are covered by the Algorithm 1 oracle test above.
        return
    expected = possible_values_bruteforce(network)
    for user in network.users:
        assert skeptic.possible_positive_values(user) == expected[user], (seed, user)
        certain = skeptic.certain_positive_values(user)
        if len(expected[user]) == 1:
            assert certain == expected[user], (seed, user)
        else:
            assert certain == frozenset(), (seed, user)


@given(st.integers(min_value=0, max_value=10_000))
@SLOW
def test_algorithm1_possible_is_assignment_consistent(seed):
    """Shared-frozenset results must still behave as independent values."""
    network = random_binary_network(seed, n_nodes=10, n_values=2)
    first = resolve(network)
    second = resolve(network)
    for user in network.users:
        assert first.possible_values(user) == second.possible_values(user)
    assert dict(first.lineage_pointers) == dict(second.lineage_pointers)


# ---------------------------------------------------------------------- #
# binarization                                                            #
# ---------------------------------------------------------------------- #


@st.composite
def non_binary_networks(draw):
    """Random networks with fan-in up to four and beliefs anywhere."""
    import random as _random

    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = _random.Random(seed)
    users = [f"n{i}" for i in range(draw(st.integers(min_value=4, max_value=7)))]
    values = ["a", "b", "c"]
    network = TrustNetwork(users=users)
    for child in users:
        parents = [u for u in users if u != child]
        rng.shuffle(parents)
        count = rng.randint(0, min(4, len(parents)))
        priorities = list(range(1, count + 1))
        if count >= 2 and rng.random() < 0.4:
            priorities[1] = priorities[0]  # introduce a tie
        for parent, priority in zip(parents[:count], priorities):
            network.add_trust(child, parent, priority=priority)
    for user in users:
        if rng.random() < 0.5:
            network.set_explicit_belief(user, rng.choice(values))
    return network


@given(non_binary_networks())
@SLOW
def test_binarization_preserves_possible_values(network):
    expected = possible_values_bruteforce(network)
    result = binarize(network)
    result.btn.validate()
    resolved = resolve(result.btn)
    for user in network.users:
        assert resolved.possible_values(user) == expected[user], user
