"""Tests for Algorithm 1 (possible / certain values, Section 2.4)."""

from __future__ import annotations

import pytest

from repro.core.bruteforce import (
    certain_values_bruteforce,
    enumerate_stable_solutions,
    possible_values_bruteforce,
)
from repro.core.errors import NetworkError
from repro.core.network import TrustNetwork
from repro.core.resolution import certain_snapshot, resolve


class TestPaperExamples:
    def test_simple_network_fig4a(self, simple_network):
        result = resolve(simple_network)
        assert result.certain_value("x1") == "v"
        assert result.certain_value("x2") == "v"
        assert result.certain_value("x3") == "w"

    def test_oscillator_fig4b_has_two_possible_values(self, oscillator_network):
        result = resolve(oscillator_network)
        assert result.possible_values("x1") == frozenset({"v", "w"})
        assert result.possible_values("x2") == frozenset({"v", "w"})
        assert result.certain_values("x1") == frozenset()
        assert result.certain_values("x2") == frozenset()
        assert result.certain_values("x3") == frozenset({"v"})
        assert result.certain_values("x4") == frozenset({"w"})

    def test_oscillator_matches_bruteforce(self, oscillator_network):
        expected = possible_values_bruteforce(oscillator_network)
        result = resolve(oscillator_network)
        for user in oscillator_network.users:
            assert result.possible_values(user) == expected[user]

    def test_oscillator_has_exactly_two_stable_solutions(self, oscillator_network):
        assert len(enumerate_stable_solutions(oscillator_network)) == 2

    def test_example_2_5_single_belief_propagates(self, indus_mappings):
        tn = TrustNetwork(mappings=indus_mappings)
        tn.set_explicit_belief("Charlie", "jar")
        result = resolve(tn)
        assert result.certain_value("Alice") == "jar"
        assert result.certain_value("Bob") == "jar"

    def test_example_2_5_priority_resolves_conflict(self, indus_mappings):
        from repro.core.binarize import binarize

        tn = TrustNetwork(mappings=indus_mappings)
        tn.set_explicit_belief("Charlie", "jar")
        tn.set_explicit_belief("Bob", "cow")
        # Bob holds an explicit belief *and* has a parent, so the network must
        # be binarized before Algorithm 1 applies (Proposition 2.8).
        result = resolve(binarize(tn).btn)
        assert result.certain_value("Alice") == "cow"
        assert result.certain_value("Bob") == "cow"


class TestResolutionBehaviour:
    def test_non_binary_network_is_rejected(self):
        tn = TrustNetwork(mappings=[("a", 1, "x"), ("b", 2, "x"), ("c", 3, "x")])
        tn.set_explicit_belief("a", "v")
        with pytest.raises(NetworkError):
            resolve(tn)

    def test_unreachable_user_has_no_possible_values(self):
        tn = TrustNetwork(mappings=[("r", 1, "a"), ("lonely_root", 1, "b")])
        tn.set_explicit_belief("r", "v")
        result = resolve(tn)
        assert result.possible_values("a") == frozenset({"v"})
        assert result.possible_values("b") == frozenset()
        assert result.possible_values("lonely_root") == frozenset()

    def test_user_with_undefined_preferred_parent_uses_other_parent(self):
        # The higher-priority parent can never hold a belief, so the value of
        # the lower-priority parent must flow (Definition 2.4, condition 3
        # only applies to parents that hold conflicting beliefs).
        tn = TrustNetwork()
        tn.add_trust("x", "never", priority=9)
        tn.add_trust("x", "src", priority=1)
        tn.set_explicit_belief("src", "v")
        result = resolve(tn)
        assert result.certain_value("x") == "v"

    def test_tied_parents_produce_both_values(self):
        tn = TrustNetwork(mappings=[("a", 1, "x"), ("b", 1, "x")])
        tn.set_explicit_belief("a", "va")
        tn.set_explicit_belief("b", "vb")
        result = resolve(tn)
        assert result.possible_values("x") == frozenset({"va", "vb"})
        assert result.has_conflict("x")
        assert result.users_with_conflicts() == frozenset({"x"})

    def test_preferred_chain_propagates(self):
        tn = TrustNetwork()
        for index in range(1, 6):
            tn.add_trust(f"n{index}", f"n{index - 1}" if index > 1 else "root", priority=1)
        tn.set_explicit_belief("root", "v")
        result = resolve(tn)
        for index in range(1, 6):
            assert result.certain_value(f"n{index}") == "v"

    def test_snapshot_contains_only_certain_users(self, oscillator_network):
        snapshot = resolve(oscillator_network).snapshot()
        assert snapshot == {"x3": "v", "x4": "w"}

    def test_certain_snapshot_helper(self, simple_network):
        assert certain_snapshot(simple_network) == {"x1": "v", "x2": "v", "x3": "w"}

    def test_every_btn_has_at_least_one_stable_solution(self, oscillator_network):
        # Forward Lemma corollary: unlike general logic programs, a BTN always
        # has a stable solution.
        assert enumerate_stable_solutions(oscillator_network)

    def test_explicit_belief_user_keeps_own_value(self):
        tn = TrustNetwork()
        tn.set_explicit_belief("a", "va")
        tn.set_explicit_belief("b", "vb")
        tn.add_trust("c", "a", priority=2)
        tn.add_trust("c", "b", priority=1)
        result = resolve(tn)
        assert result.certain_value("a") == "va"
        assert result.certain_value("b") == "vb"
        assert result.certain_value("c") == "va"

    def test_two_node_cycle_without_external_beliefs_is_undefined(self):
        tn = TrustNetwork()
        tn.add_trust("x", "y", priority=1)
        tn.add_trust("y", "x", priority=1)
        result = resolve(tn)
        assert result.possible_values("x") == frozenset()
        assert result.possible_values("y") == frozenset()

    def test_order_invariance_of_insertion(self, indus_mappings):
        # Building the same network with explicit beliefs added in different
        # orders must give identical results (the paper's core motivation).
        from repro.core.binarize import binarize

        values = {"Charlie": "jar", "Bob": "cow"}
        snapshots = []
        for order in (["Charlie", "Bob"], ["Bob", "Charlie"]):
            tn = TrustNetwork(mappings=indus_mappings)
            for user in order:
                tn.set_explicit_belief(user, values[user])
            resolved = resolve(binarize(tn).btn).snapshot()
            snapshots.append(
                {user: value for user, value in resolved.items() if user in tn.users}
            )
        assert snapshots[0] == snapshots[1]
        assert snapshots[0]["Alice"] == "cow"

    def test_certain_equals_bruteforce_on_nested_cycles(self):
        # Two coupled cycles sharing a node.
        tn = TrustNetwork()
        tn.add_trust("a", "b", priority=2)
        tn.add_trust("b", "a", priority=2)
        tn.add_trust("b", "c", priority=1)
        tn.add_trust("c", "a", priority=2)
        tn.add_trust("a", "r1", priority=1)
        tn.add_trust("c", "r2", priority=1)
        tn.set_explicit_belief("r1", "v")
        tn.set_explicit_belief("r2", "w")
        result = resolve(tn)
        expected_poss = possible_values_bruteforce(tn)
        expected_cert = certain_values_bruteforce(tn)
        for user in tn.users:
            assert result.possible_values(user) == expected_poss[user], user
            assert result.certain_values(user) == expected_cert[user], user
