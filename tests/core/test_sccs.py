"""Unit tests for the incremental condensation engine (repro.core.sccs).

The engine is validated against networkx: after any interleaving of node
closures, the components it reports as minimal must be exactly the source
components of the condensation of the remaining open subgraph.
"""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.core.errors import NetworkError
from repro.core.sccs import CondensationEngine, strongly_connected_components


def nx_minimal_sccs(n, successors, open_nodes):
    """Reference: source components of the open subgraph's condensation."""
    graph = nx.DiGraph()
    graph.add_nodes_from(open_nodes)
    for node in open_nodes:
        for child in successors[node]:
            if child in open_nodes:
                graph.add_edge(node, child)
    condensation = nx.condensation(graph)
    return {
        frozenset(condensation.nodes[cid]["members"])
        for cid in condensation.nodes
        if condensation.in_degree(cid) == 0
    }


def random_graph(rng, n, edge_prob):
    successors = [[] for _ in range(n)]
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < edge_prob:
                successors[u].append(v)
    return successors


class TestStronglyConnectedComponents:
    def test_matches_networkx_on_random_graphs(self):
        rng = random.Random(42)
        for _ in range(50):
            n = rng.randint(1, 12)
            successors = random_graph(rng, n, rng.uniform(0.05, 0.4))
            mine = {
                frozenset(c)
                for c in strongly_connected_components(
                    range(n), lambda u: successors[u]
                )
            }
            graph = nx.DiGraph()
            graph.add_nodes_from(range(n))
            for u in range(n):
                for v in successors[u]:
                    graph.add_edge(u, v)
            theirs = {frozenset(c) for c in nx.strongly_connected_components(graph)}
            assert mine == theirs

    def test_reverse_topological_order(self):
        # a -> b -> c: c's component must be emitted before b's before a's.
        successors = {0: [1], 1: [2], 2: []}
        comps = strongly_connected_components(range(3), lambda u: successors[u])
        assert comps == [[2], [1], [0]]

    def test_deep_chain_does_not_recurse(self):
        n = 50_000
        successors = {i: [i + 1] for i in range(n - 1)}
        successors[n - 1] = []
        comps = strongly_connected_components(
            range(n), lambda u: successors[u]
        )
        assert len(comps) == n


class TestCondensationEngine:
    def test_empty_graph_raises_on_pop(self):
        engine = CondensationEngine([], [[]])
        with pytest.raises(NetworkError):
            engine.pop_minimal()

    def test_single_cycle_is_minimal(self):
        successors = [[1], [2], [0]]
        engine = CondensationEngine(range(3), successors)
        assert set(engine.pop_minimal()) == {0, 1, 2}

    def test_chain_of_components_pops_in_dependency_order(self):
        # {0,1} -> {2} -> {3,4}
        successors = [[1, 2], [0], [3], [4], [3]]
        engine = CondensationEngine(range(5), successors)
        first = engine.pop_minimal()
        assert set(first) == {0, 1}
        for node in first:
            engine.close(node)
        second = engine.pop_minimal()
        assert set(second) == {2}
        engine.close(2)
        third = engine.pop_minimal()
        assert set(third) == {3, 4}

    def test_carved_component_splits(self):
        # Cycle 0 -> 1 -> 2 -> 0; closing 1 externally splits the residual
        # into {2} (now minimal) and {0} (waiting on 2).
        successors = [[1], [2], [0]]
        engine = CondensationEngine(range(3), successors)
        engine.close(1)
        assert set(engine.pop_minimal()) == {2}
        engine.close(2)
        assert set(engine.pop_minimal()) == {0}

    def test_matches_networkx_under_random_closures(self):
        rng = random.Random(7)
        for trial in range(120):
            n = rng.randint(2, 14)
            successors = random_graph(rng, n, rng.uniform(0.05, 0.35))
            engine = CondensationEngine(range(n), successors)
            open_nodes = set(range(n))
            while open_nodes:
                # Interleave arbitrary external closures (Step-1 analogue)...
                if rng.random() < 0.4:
                    victim = rng.choice(sorted(open_nodes))
                    engine.close(victim)
                    open_nodes.discard(victim)
                    continue
                # ...with minimal-component pops (Step-2 analogue).
                expected = nx_minimal_sccs(n, successors, open_nodes)
                popped = frozenset(engine.pop_minimal())
                assert popped in expected, (trial, popped, expected)
                for node in popped:
                    engine.close(node)
                open_nodes -= popped
            assert engine.open_count == 0

    def test_every_minimal_component_is_eventually_popped(self):
        rng = random.Random(99)
        for _ in range(60):
            n = rng.randint(2, 12)
            successors = random_graph(rng, n, rng.uniform(0.1, 0.5))
            engine = CondensationEngine(range(n), successors)
            open_nodes = set(range(n))
            seen = []
            while open_nodes:
                popped = engine.pop_minimal()
                assert popped, "pop_minimal returned an empty component"
                assert open_nodes.issuperset(popped)
                seen.append(set(popped))
                for node in popped:
                    engine.close(node)
                open_nodes.difference_update(popped)
            assert sum(len(c) for c in seen) == n

    def test_close_is_idempotent_and_ignores_unknown(self):
        successors = [[1], [0], []]
        engine = CondensationEngine([0, 1], successors, 3)
        engine.close(2)  # never open: must be a no-op
        assert set(engine.pop_minimal()) == {0, 1}
        engine.close(0)
        engine.close(0)  # double close must not corrupt counters
        engine.close(1)
        assert engine.open_count == 0

    def test_parallel_edges_are_counted_consistently(self):
        # Two parallel edges 0 -> 1; closing 0 must leave {1} minimal.
        successors = [[1, 1], []]
        engine = CondensationEngine(range(2), successors)
        assert set(engine.pop_minimal()) == {0}
        engine.close(0)
        assert set(engine.pop_minimal()) == {1}
