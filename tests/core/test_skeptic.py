"""Tests for the Skeptic Resolution Algorithm (Algorithm 2, Theorem 3.5)."""

from __future__ import annotations

import pytest

from repro.core.beliefs import Belief, BeliefSet, Paradigm
from repro.core.bruteforce import constrained_possible_positive
from repro.core.errors import NetworkError
from repro.core.network import TrustNetwork
from repro.core.resolution import resolve
from repro.core.skeptic import resolve_skeptic


def assert_positive_possible_match(network):
    """Algorithm 2's possible positive values must match the Definition 3.3 oracle."""
    algorithm = resolve_skeptic(network)
    oracle = constrained_possible_positive(network, Paradigm.SKEPTIC)
    for user in network.users:
        assert algorithm.possible_positive_values(user) == oracle[user], user


class TestWithoutConstraints:
    """With no negative beliefs, Algorithm 2 must agree with Algorithm 1."""

    def test_simple_network(self, simple_network):
        algorithm1 = resolve(simple_network)
        algorithm2 = resolve_skeptic(simple_network)
        for user in simple_network.users:
            assert algorithm2.possible_positive_values(user) == algorithm1.possible_values(user)
            assert algorithm2.certain_positive_values(user) == algorithm1.certain_values(user)

    def test_oscillator(self, oscillator_network):
        algorithm1 = resolve(oscillator_network)
        algorithm2 = resolve_skeptic(oscillator_network)
        for user in oscillator_network.users:
            assert algorithm2.possible_positive_values(user) == algorithm1.possible_values(user)

    def test_chain(self):
        tn = TrustNetwork()
        tn.add_trust("b", "a", priority=1)
        tn.add_trust("c", "b", priority=1)
        tn.set_explicit_belief("a", "v")
        algorithm2 = resolve_skeptic(tn)
        assert algorithm2.certain_positive_values("c") == frozenset({"v"})


class TestWithConstraints:
    def test_constraint_via_non_preferred_edge_does_not_block(self):
        # x prefers a negative-only root and also trusts a positive source:
        # the positive value must still arrive (B.7 discussion).
        tn = TrustNetwork()
        tn.add_trust("x", "filter", priority=2)
        tn.add_trust("x", "source", priority=1)
        tn.set_explicit_belief("filter", BeliefSet.from_negatives(["a"]))
        tn.set_explicit_belief("source", "b")
        result = resolve_skeptic(tn)
        assert result.possible_positive_values("x") == frozenset({"b"})
        assert result.certain_positive_values("x") == frozenset({"b"})

    def test_constraint_blocks_matching_value(self):
        tn = TrustNetwork()
        tn.add_trust("x", "filter", priority=2)
        tn.add_trust("x", "source", priority=1)
        tn.set_explicit_belief("filter", BeliefSet.from_negatives(["a"]))
        tn.set_explicit_belief("source", "a")
        result = resolve_skeptic(tn)
        assert result.possible_positive_values("x") == frozenset()
        assert result.representation("x").has_bottom

    def test_bottom_propagates_through_preferred_chain(self):
        tn = TrustNetwork()
        tn.add_trust("x", "filter", priority=2)
        tn.add_trust("x", "source", priority=1)
        tn.add_trust("y", "x", priority=2)
        tn.add_trust("y", "other", priority=1)
        tn.set_explicit_belief("filter", BeliefSet.from_negatives(["a"]))
        tn.set_explicit_belief("source", "a")
        tn.set_explicit_belief("other", "b")
        result = resolve_skeptic(tn)
        # x is ⊥, and under Skeptic ⊥ dominates: y cannot adopt b+ either.
        assert result.representation("y").has_bottom
        assert result.possible_positive_values("y") == frozenset()

    def test_pref_neg_propagates_only_along_preferred_edges(self):
        tn = TrustNetwork()
        tn.add_trust("mid", "filter", priority=2)
        tn.add_trust("leaf", "mid", priority=2)
        tn.add_trust("leaf", "source", priority=1)
        tn.set_explicit_belief("filter", BeliefSet.from_negatives(["a", "b"]))
        tn.set_explicit_belief("source", "b")
        result = resolve_skeptic(tn)
        assert result.forced_negative_values("mid") == frozenset({"a", "b"})
        assert result.forced_negative_values("leaf") == frozenset({"a", "b"})
        # The constraint chain forces leaf to reject b, so no positive arrives.
        assert result.possible_positive_values("leaf") == frozenset()

    def test_partial_flooding_of_a_component(self):
        # A 2-cycle where one member prefers a positive source and the other
        # prefers a constraint rejecting that value: the first member accepts
        # the value, the second is forced to ⊥.
        tn = TrustNetwork()
        tn.add_trust("p", "source", priority=2)
        tn.add_trust("p", "q", priority=1)
        tn.add_trust("q", "filter", priority=2)
        tn.add_trust("q", "p", priority=1)
        tn.set_explicit_belief("source", "a")
        tn.set_explicit_belief("filter", BeliefSet.from_negatives(["a"]))
        result = resolve_skeptic(tn)
        assert result.possible_positive_values("p") == frozenset({"a"})
        assert result.possible_positive_values("q") == frozenset()
        assert result.representation("q").has_bottom
        assert_positive_possible_match(tn)

    def test_forced_rejection_propagates_around_a_cycle(self):
        # Both cycle members end up rejecting the value because the constraint
        # reaches them through a chain of preferred edges.
        tn = TrustNetwork()
        tn.add_trust("p", "q", priority=2)
        tn.add_trust("p", "source", priority=1)
        tn.add_trust("q", "filter", priority=2)
        tn.add_trust("q", "p", priority=1)
        tn.set_explicit_belief("source", "a")
        tn.set_explicit_belief("filter", BeliefSet.from_negatives(["a"]))
        result = resolve_skeptic(tn)
        assert result.possible_positive_values("p") == frozenset()
        assert result.possible_positive_values("q") == frozenset()
        assert result.forced_negative_values("p") == frozenset({"a"})
        assert_positive_possible_match(tn)

    def test_matches_definition_oracle_on_acyclic_networks(self):
        tn = TrustNetwork()
        tn.add_trust("x3", "x2", priority=2)
        tn.add_trust("x3", "x1", priority=1)
        tn.add_trust("x5", "x4", priority=2)
        tn.add_trust("x5", "x3", priority=1)
        tn.set_explicit_belief("x1", BeliefSet.from_negatives(["b"]))
        tn.set_explicit_belief("x2", "a")
        tn.set_explicit_belief("x4", BeliefSet.from_negatives(["a"]))
        assert_positive_possible_match(tn)

    def test_matches_definition_oracle_on_cyclic_network(self):
        tn = TrustNetwork()
        tn.add_trust("x1", "x2", priority=2)
        tn.add_trust("x1", "x3", priority=1)
        tn.add_trust("x2", "x1", priority=2)
        tn.add_trust("x2", "x4", priority=1)
        tn.set_explicit_belief("x3", "v")
        tn.set_explicit_belief("x4", BeliefSet.from_negatives(["v"]))
        assert_positive_possible_match(tn)

    def test_oscillator_with_two_values_and_one_constraint(self):
        tn = TrustNetwork()
        tn.add_trust("x1", "x2", priority=2)
        tn.add_trust("x1", "x3", priority=1)
        tn.add_trust("x2", "x1", priority=2)
        tn.add_trust("x2", "x4", priority=1)
        tn.add_trust("x5", "x1", priority=2)
        tn.add_trust("x5", "x6", priority=1)
        tn.set_explicit_belief("x3", "v")
        tn.set_explicit_belief("x4", "w")
        tn.set_explicit_belief("x6", BeliefSet.from_negatives(["v"]))
        assert_positive_possible_match(tn)


class TestValidation:
    def test_ties_are_rejected(self):
        tn = TrustNetwork(mappings=[("a", 1, "x"), ("b", 1, "x")])
        tn.set_explicit_belief("a", "v")
        with pytest.raises(NetworkError):
            resolve_skeptic(tn)

    def test_non_binary_rejected(self):
        tn = TrustNetwork(
            mappings=[("a", 1, "x"), ("b", 2, "x"), ("c", 3, "x")],
            explicit_beliefs={"a": "v"},
        )
        with pytest.raises(NetworkError):
            resolve_skeptic(tn)

    def test_cofinite_explicit_constraint_rejected(self):
        tn = TrustNetwork()
        tn.add_trust("x", "r", priority=1)
        tn.set_explicit_belief("r", BeliefSet.bottom())
        with pytest.raises(NetworkError):
            resolve_skeptic(tn)
