"""Tests for the repPoss decoding of Figure 18 (five cases)."""

from __future__ import annotations

import pytest

from repro.core.beliefs import Belief
from repro.core.skeptic import SkepticRepresentation

DOMAIN = ("a", "b", "c")


def negatives_of(beliefs):
    return {belief.value for belief in beliefs if belief.is_negative}


def positives_of(beliefs):
    return {belief.value for belief in beliefs if belief.is_positive}


class TestFigure18Decoding:
    def test_case1_only_negative_beliefs(self):
        rep = SkepticRepresentation(negatives=frozenset({"a"}))
        poss = rep.possible_beliefs(DOMAIN)
        cert = rep.certain_beliefs(DOMAIN)
        assert poss == frozenset({Belief.negative("a")})
        assert cert == frozenset({Belief.negative("a")})
        assert rep.possible_positive_values() == frozenset()
        assert rep.certain_positive_values() == frozenset()
        assert not rep.is_type2

    def test_case2_bottom_and_negatives(self):
        rep = SkepticRepresentation(negatives=frozenset({"a"}), has_bottom=True)
        poss = rep.possible_beliefs(DOMAIN)
        cert = rep.certain_beliefs(DOMAIN)
        assert negatives_of(poss) == set(DOMAIN)
        assert negatives_of(cert) == set(DOMAIN)
        assert positives_of(poss) == set()
        assert rep.is_type2

    def test_case3_single_positive_not_rejected(self):
        rep = SkepticRepresentation(positives=frozenset({"a"}))
        poss = rep.possible_beliefs(DOMAIN)
        cert = rep.certain_beliefs(DOMAIN)
        # poss = cert = {a+} ∪ (⊥ − {a−})
        assert positives_of(poss) == {"a"}
        assert negatives_of(poss) == {"b", "c"}
        assert poss == cert
        assert rep.certain_positive_values() == frozenset({"a"})

    def test_case4_single_positive_also_rejected(self):
        rep = SkepticRepresentation(positives=frozenset({"a"}), has_bottom=True)
        poss = rep.possible_beliefs(DOMAIN)
        cert = rep.certain_beliefs(DOMAIN)
        # poss = {a+} ∪ ⊥ ; cert = ⊥ − {a−}
        assert positives_of(poss) == {"a"}
        assert negatives_of(poss) == set(DOMAIN)
        assert positives_of(cert) == set()
        assert negatives_of(cert) == {"b", "c"}
        assert rep.certain_positive_values() == frozenset()

    def test_case4_with_explicit_negative_instead_of_bottom(self):
        rep = SkepticRepresentation(
            positives=frozenset({"a"}), negatives=frozenset({"a"})
        )
        assert rep.certain_positive_values() == frozenset()

    def test_case5_multiple_positives(self):
        rep = SkepticRepresentation(positives=frozenset({"a", "b"}))
        poss = rep.possible_beliefs(DOMAIN)
        cert = rep.certain_beliefs(DOMAIN)
        # poss = {a+, b+} ∪ ⊥ ; cert = ⊥ − {a−, b−}
        assert positives_of(poss) == {"a", "b"}
        assert negatives_of(poss) == set(DOMAIN)
        assert positives_of(cert) == set()
        assert negatives_of(cert) == {"c"}
        assert rep.possible_positive_values() == frozenset({"a", "b"})
        assert rep.certain_positive_values() == frozenset()

    def test_empty_representation(self):
        rep = SkepticRepresentation()
        assert rep.is_empty
        assert rep.possible_beliefs(DOMAIN) == frozenset()
        assert rep.certain_beliefs(DOMAIN) == frozenset()

    def test_domain_is_extended_by_mentioned_values(self):
        rep = SkepticRepresentation(positives=frozenset({"z"}))
        poss = rep.possible_beliefs(DOMAIN)
        assert Belief.positive("z") in poss
        assert Belief.negative("a") in poss
