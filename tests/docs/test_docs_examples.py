"""Executable documentation: the README/docs code blocks must actually work.

Two layers keep the documentation honest:

* **doctests** — every ``>>>`` example in ``README.md`` and ``docs/*.md``
  runs as a doctest on every test run (they are fast);
* **command execution** — every fenced ``bash`` block is extracted and each
  command executed as a subprocess.  Some of those commands run whole test
  or benchmark suites, so this layer only runs when ``REPRO_DOCS_EXEC=1``
  is set (the CI docs job sets it); without it the commands are still
  statically validated (referenced modules and paths must exist).
"""

from __future__ import annotations

import doctest
import importlib.util
import os
import re
import shlex
import subprocess
import sys
from pathlib import Path
from typing import List, Tuple

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda path: str(path.relative_to(REPO_ROOT)),
)

EXEC_ENABLED = os.environ.get("REPRO_DOCS_EXEC", "0") not in ("", "0", "false")

_FENCE = re.compile(r"^```(\w*)\s*$")


def fenced_blocks(path: Path) -> List[Tuple[str, str]]:
    """All fenced code blocks of a markdown file as (language, body) pairs."""
    blocks: List[Tuple[str, str]] = []
    language = None
    body: List[str] = []
    for line in path.read_text().splitlines():
        match = _FENCE.match(line)
        if match and language is None:
            language = match.group(1) or "text"
            body = []
        elif line.strip() == "```" and language is not None:
            blocks.append((language, "\n".join(body)))
            language = None
        elif language is not None:
            body.append(line)
    return blocks


def bash_commands() -> List[Tuple[str, str]]:
    """Every command of every ``bash`` block, as (doc name, command) pairs."""
    commands: List[Tuple[str, str]] = []
    for path in DOC_FILES:
        for language, body in fenced_blocks(path):
            if language != "bash":
                continue
            for raw in body.splitlines():
                command = raw.split("#", 1)[0].strip()
                if command:
                    commands.append((path.name, command))
    return commands


COMMANDS = bash_commands()


def test_documentation_files_exist():
    names = {path.name for path in DOC_FILES}
    assert "README.md" in names
    assert "ARCHITECTURE.md" in names
    assert "BENCHMARKS.md" in names


def test_bash_blocks_were_found():
    # The quickstart and the figure-reproduction commands at minimum.
    assert len(COMMANDS) >= 8


@pytest.mark.parametrize(
    "doc,command", COMMANDS, ids=[f"{d}:{c[:60]}" for d, c in COMMANDS]
)
def test_command_is_well_formed(doc, command):
    """Static validation (always on): the command's targets must exist."""
    words = shlex.split(command)
    assert words, command
    # Documented commands run python against this repository.
    assert any(word.startswith("python") for word in words), (
        f"{doc}: only python-based commands are documented, got {command!r}"
    )
    for index, word in enumerate(words):
        if word == "-m":
            module = words[index + 1]
            if module.startswith("repro."):
                spec = importlib.util.find_spec(module)
                assert spec is not None, f"{doc}: module {module} not found"
        if word.endswith(".py") or "/" in word and "=" not in word:
            assert (REPO_ROOT / word).exists(), f"{doc}: path {word} missing"


@pytest.mark.skipif(
    not EXEC_ENABLED,
    reason="set REPRO_DOCS_EXEC=1 to execute documented commands (CI docs job)",
)
@pytest.mark.parametrize(
    "doc,command", COMMANDS, ids=[f"{d}:{c[:60]}" for d, c in COMMANDS]
)
def test_command_executes_cleanly(doc, command):
    """Execution (docs job): every documented command must exit 0."""
    env = dict(os.environ)
    # A documented command may itself invoke pytest on a directory that
    # collects this module (the tier-1 suite does); drop the opt-in flag so
    # the child run validates statically instead of recursing into
    # execution.
    env.pop("REPRO_DOCS_EXEC", None)
    words = shlex.split(command)
    # Fold leading VAR=value assignments into the environment so commands
    # can be written naturally ("PYTHONPATH=src python -m ...").
    while words and "=" in words[0] and not words[0].startswith("python"):
        key, value = words.pop(0).split("=", 1)
        env[key] = value
    if words and words[0] == "python":
        words[0] = sys.executable
    completed = subprocess.run(
        words,
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=1200,
    )
    assert completed.returncode == 0, (
        f"{doc}: {command!r} failed with rc={completed.returncode}\n"
        f"stdout:\n{completed.stdout[-2000:]}\n"
        f"stderr:\n{completed.stderr[-2000:]}"
    )


@pytest.mark.parametrize(
    "path", DOC_FILES, ids=[p.name for p in DOC_FILES]
)
def test_doctest_examples(path, monkeypatch):
    """Every ``>>>`` example in the documentation runs and matches."""
    monkeypatch.chdir(REPO_ROOT)
    failures, tests = doctest.testfile(
        str(path),
        module_relative=False,
        optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE,
        verbose=False,
    )
    if path.name == "README.md":
        assert tests > 0, "README must carry runnable >>> examples"
    assert failures == 0, f"{path.name}: {failures} doctest failure(s)"
