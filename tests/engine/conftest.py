"""Shared helpers for the engine test suite."""

from __future__ import annotations

import pytest


@pytest.fixture
def serialized_relation():
    """Canonical byte serialization of a store's POSS relation (the same
    oracle the bulk suite uses)."""

    def serialize(store) -> bytes:
        rows = sorted(store.possible_table())
        return "\n".join(
            f"{row.user}|{row.key}|{row.value}" for row in rows
        ).encode()

    return serialize
