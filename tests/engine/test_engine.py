"""End-to-end tests for the unified resolution engine (repro.engine).

The acceptance round trip: ``resolve`` → ``materialize`` → ``apply`` →
``query`` must stay consistent — the in-memory maintained state, the
``POSS`` relation and a from-scratch resolution of the mutated network all
agree — in memory, on sqlite files, and (in CI) on PostgreSQL via the
DbApiBackend round trip in ``tests/bulk/test_postgres.py``.
"""

from __future__ import annotations

import random

import pytest

from repro import ResolutionEngine, TrustNetwork, resolve
from repro.bulk.backends import ShardSpec, SqliteFileBackend
from repro.bulk.store import PossStore, ShardedPossStore
from repro.core.errors import BulkProcessingError, NetworkError
from repro.engine import EngineReport
from repro.incremental import AddTrust, RemoveTrust, RemoveUser, SetBelief
from repro.workloads.updates import generate_update_stream


def _chain_network():
    tn = TrustNetwork()
    tn.add_trust("b", "a", priority=1)
    tn.add_trust("c", "b", priority=1)
    tn.set_explicit_belief("a", "v")
    return tn


def _random_network(rng, max_users=8):
    n = rng.randint(4, max_users)
    users = [f"u{i}" for i in range(n)]
    tn = TrustNetwork()
    for user in users:
        tn.add_user(user)
    n_explicit = rng.randint(1, 2)
    for child in users[n_explicit:]:
        parents = rng.sample([u for u in users if u != child], rng.randint(1, 2))
        priorities = rng.sample([1, 2], len(parents))
        for parent, priority in zip(parents, priorities):
            tn.add_trust(child, parent, priority=priority)
    for user in users[:n_explicit]:
        tn.set_explicit_belief(user, rng.choice(["v1", "v2"]))
    return tn


def _memory_rows(engine):
    """The relation implied by the engine's in-memory state, sorted."""
    rows = []
    for key, resolution in engine.resolve().resolutions.items():
        for user, values in resolution.possible.items():
            for value in values:
                rows.append((str(user), key, str(value)))
    return sorted(rows)


def _store_rows(engine):
    return sorted(
        (row.user, row.key, row.value) for row in engine.store.possible_table()
    )


class TestOpenValidation:
    def test_requires_binary_network(self):
        tn = TrustNetwork()
        for parent in ("a", "b", "c"):
            tn.add_trust("x", parent, priority=1)
        with pytest.raises(NetworkError, match="binary"):
            ResolutionEngine.open(tn)

    def test_store_and_shards_mutually_exclusive(self):
        with PossStore() as store:
            with pytest.raises(BulkProcessingError):
                ResolutionEngine.open(_chain_network(), store=store, shards=2)

    def test_unknown_mode_rejected(self):
        with pytest.raises(BulkProcessingError, match="mode"):
            ResolutionEngine.open(_chain_network(), mode="turbo")

    def test_shards_shorthand_builds_sharded_store(self):
        with ResolutionEngine.open(_chain_network(), shards=ShardSpec.hashed(3)) as engine:
            assert isinstance(engine.store, ShardedPossStore)
            assert len(engine.store.shards) == 3


class TestRoundTrip:
    """resolve → materialize → apply → query, against every store kind."""

    def _round_trip(self, engine):
        # resolve: warm in-memory state matches a from-scratch resolution.
        report = engine.resolve()
        assert isinstance(report, EngineReport)
        assert report.operation == "resolve"
        fresh = resolve(engine.network)
        for key in engine.keys:
            assert report.resolutions[key].possible == fresh.possible

        # materialize: the relation equals the in-memory rows.
        bulk_report = engine.materialize()
        assert bulk_report.operation == "materialize"
        assert bulk_report.bulk is not None
        assert bulk_report.plan_source in ("fresh", "cached", "patched")
        assert bulk_report.statements == bulk_report.bulk.statements
        assert _store_rows(engine) == _memory_rows(engine)

        # apply: store and memory move together, plan is patched.
        apply_report = engine.apply(
            SetBelief("a", "w"), AddTrust("d", "c", 1), SetBelief("a", "w2")
        )
        assert apply_report.operation == "apply"
        assert apply_report.delta is not None
        assert apply_report.coalesced_from == 3
        assert apply_report.deltas == 2  # the two belief writes merged
        assert apply_report.recomputes == len(engine.keys)
        assert apply_report.plan_source == "patched"
        assert _store_rows(engine) == _memory_rows(engine)

        # query: reads the materialized relation and sees the deltas.
        assert engine.query("d") == frozenset({"w2"})
        assert engine.certain("d") == frozenset({"w2"})
        assert engine.query("c") == frozenset({"w2"})

        # a re-materialization reuses the patched plan (now "cached") and
        # reproduces the same relation from scratch.
        rows_before = _store_rows(engine)
        rematerialized = engine.materialize()
        assert rematerialized.plan_source == "cached"
        assert _store_rows(engine) == rows_before

    def test_round_trip_in_memory(self):
        with ResolutionEngine.open(_chain_network()) as engine:
            self._round_trip(engine)

    def test_round_trip_on_sqlite_file(self, tmp_path):
        store = PossStore(backend=SqliteFileBackend(str(tmp_path / "poss.db")))
        with ResolutionEngine.open(_chain_network(), store=store) as engine:
            self._round_trip(engine)

    def test_round_trip_sharded(self, tmp_path):
        backends = [
            SqliteFileBackend(str(tmp_path / f"shard{i}.db")) for i in range(2)
        ]
        store = ShardedPossStore(2, backends=backends)
        with ResolutionEngine.open(
            _chain_network(), store=store, keys=("k0", "k1", "k2")
        ) as engine:
            self._round_trip(engine)

    def test_round_trip_multi_key(self):
        with ResolutionEngine.open(
            _chain_network(), keys=("k0", "k1")
        ) as engine:
            engine.materialize()
            engine.apply(SetBelief("a", "x", key="k0"))
            assert engine.query("c", "k0") == frozenset({"x"})
            assert engine.query("c", "k1") == frozenset({"v"})
            assert _store_rows(engine) == _memory_rows(engine)


class TestQueryModes:
    def test_auto_mode_switches_to_store_after_materialize(self):
        with ResolutionEngine.open(_chain_network()) as engine:
            assert engine.query("c") == frozenset({"v"})  # memory
            engine.materialize()
            engine.store.insert_rows([("c", "k0", "planted")])
            assert "planted" in engine.query("c")  # now reading the store

    def test_memory_mode_never_touches_the_store(self):
        with ResolutionEngine.open(_chain_network(), mode="memory") as engine:
            engine.materialize()
            engine.store.insert_rows([("c", "k0", "planted")])
            assert engine.query("c") == frozenset({"v"})

    def test_store_mode_reads_the_relation_immediately(self):
        with ResolutionEngine.open(_chain_network(), mode="store") as engine:
            assert engine.query("c") == frozenset()  # nothing materialized
            engine.materialize()
            assert engine.query("c") == frozenset({"v"})


class TestPlanMaintenance:
    def test_plan_is_patched_not_replanned_across_applies(self):
        with ResolutionEngine.open(_chain_network()) as engine:
            assert engine.plan is not None
            assert engine.plans_built == 1
            for i in range(5):
                engine.apply(AddTrust(f"extra{i}", "c", 1))
            assert engine.plans_built == 1
            assert engine.plans_patched == 5
            # The maintained plan matches a fresh re-plan's closed set.
            from repro.bulk.planner import plan_resolution, step_io

            def closed(plan):
                return {str(u) for s in plan.steps for u in step_io(s)[1]}

            assert closed(engine.plan) == closed(plan_resolution(engine.network))

    def test_out_of_band_mutation_forces_a_fresh_plan(self):
        with ResolutionEngine.open(_chain_network()) as engine:
            assert engine.plan is not None
            built = engine.plans_built
            # Mutate the network behind the engine's back: the version
            # hook invalidates the cached plan.
            engine.network.add_trust("rogue", "c", priority=1)
            plan = engine.plan
            assert engine.plans_built == built + 1
            assert any(
                "rogue" in str(u)
                for s in plan.steps
                for u in __import__(
                    "repro.bulk.planner", fromlist=["step_io"]
                ).step_io(s)[1]
            )

    def test_remove_user_patches_the_plan(self):
        with ResolutionEngine.open(_chain_network()) as engine:
            engine.materialize()
            engine.apply(RemoveUser("c"))
            from repro.bulk.planner import step_io

            closed = {
                str(u) for s in engine.plan.steps for u in step_io(s)[1]
            }
            assert "c" not in closed
            assert engine.query("c") == frozenset()

    def test_plan_property_matches_fresh_replan_on_random_streams(self):
        """The engine-maintained plan materializes the same relation a
        fresh plan would, across random update streams."""
        rng = random.Random(808)
        for trial in range(25):
            network = _random_network(rng)
            engine = ResolutionEngine.open(network)
            stream = list(
                generate_update_stream(network.copy(), n_ops=8, seed=trial)
            )
            try:
                for delta in stream:
                    engine.apply(delta)
                engine.materialize()
                assert _store_rows(engine) == _memory_rows(engine), f"trial {trial}"
            finally:
                engine.close()


class TestPlanSourceLifecycle:
    def test_cached_is_reported_on_reuse(self):
        with ResolutionEngine.open(_chain_network()) as engine:
            first = engine.materialize()
            second = engine.materialize()
            assert first.plan_source == "fresh"
            assert second.plan_source == "cached"


class TestMidBatchRecovery:
    def test_sibling_keys_recover_from_a_mid_batch_rejection(self):
        """A structural prefix that succeeded before a mid-batch rejection
        must be visible to EVERY key's maintained state (and the store),
        not only to the first resolver that processed it."""
        from repro.bulk.store import PossStore as _PossStore
        from repro.incremental.session import IncrementalSession

        tn = _chain_network()
        session = IncrementalSession(tn, store=_PossStore(), keys=("k0", "k1"))
        with pytest.raises(NetworkError):
            session.apply_batch(
                AddTrust("d", "c", 1),        # succeeds, mutates the network
                AddTrust("e", "e", 1),        # self-trust: rejected mid-batch
                coalesce=False,
            )
        # The shared network holds the first edge; both keys must agree.
        expected = resolve(tn).possible
        for key in ("k0", "k1"):
            for user in tn.users:
                assert session.possible_values(user, key) == expected[user], (
                    key,
                    user,
                )
            assert session.store.possible_values("d", key) == expected["d"]
        session.close()


class TestCoalesceBarriers:
    def test_remove_user_barriers_unrelated_belief_slots(self):
        """RemoveUser changes the parent sets of children it does not name,
        so no belief merge may cross it — a stream that is valid op-at-a-
        time must stay valid after coalescing."""
        from repro.incremental import RemoveBelief, RemoveUser, coalesce

        tn = TrustNetwork()
        tn.add_trust("u", "w", priority=1)
        tn.set_explicit_belief("w", "v")
        stream = [RemoveBelief("u"), RemoveUser("w"), SetBelief("u", "x")]
        condensed = coalesce(stream)
        assert condensed == stream  # nothing merged across the removal
        with ResolutionEngine.open(tn) as engine:
            report = engine.apply(*stream)
            assert report.deltas == 3
            assert engine.query("u") == frozenset({"x"})


class TestEngineReportSubsumption:
    def test_materialize_report_subsumes_bulk_run_report(self):
        with ResolutionEngine.open(_chain_network(), shards=2) as engine:
            report = engine.materialize()
            bulk = report.bulk
            assert (report.statements, report.transactions, report.shards) == (
                bulk.statements,
                bulk.transactions,
                bulk.shards,
            )
            assert report.scheduler == bulk.scheduler == "pipelined"
            assert report.dag_stages == bulk.dag_stages
            assert report.stages_overlapped == bulk.stages_overlapped

    def test_pooled_materialize_mirrors_the_pool_gauges(self, tmp_path):
        store = PossStore(backend=SqliteFileBackend(str(tmp_path / "pool.db")))
        with ResolutionEngine.open(
            _chain_network(), store=store, pool_workers=2
        ) as engine:
            report = engine.materialize(compiled=True)
            bulk = report.bulk
            assert report.pool_workers == bulk.pool_workers >= 1
            assert report.pool_checkouts == bulk.pool_checkouts >= 1
            assert report.pool_in_use_peak == bulk.pool_in_use_peak >= 1
            assert report.pool_wait_seconds == bulk.pool_wait_seconds >= 0.0
            assert engine.query("c") == frozenset({"v"})

    def test_unpooled_materialize_reports_zero_pool_gauges(self):
        with ResolutionEngine.open(_chain_network()) as engine:
            report = engine.materialize(compiled=True)
            assert report.pool_workers == 0
            assert report.pool_checkouts == 0

    def test_apply_report_subsumes_delta_apply_report(self):
        with ResolutionEngine.open(_chain_network()) as engine:
            engine.materialize()
            report = engine.apply(SetBelief("a", "z"))
            delta = report.delta
            assert (report.deltas, report.recomputes, report.users_changed) == (
                delta.deltas,
                delta.recomputes,
                delta.users_changed,
            )
            assert report.rows_deleted == delta.rows_deleted
            assert report.rows_inserted == delta.rows_inserted
            assert report.dirty_region == delta.dirty_region
