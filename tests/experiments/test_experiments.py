"""Smoke tests for the experiment drivers (tiny parameterizations).

The full sweeps live in ``benchmarks/``; here each driver is exercised with
the smallest meaningful parameters so that the row schemas, summaries and
shape checks stay correct.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import (
    fig5_lp_exponential,
    fig8a_cycles,
    fig8b_web,
    fig8c_bulk,
    fig11_binarization,
    fig15_worstcase,
)
from repro.experiments.runner import (
    average_time,
    doubling_ratios,
    format_table,
    gather_balance,
    log_log_slope,
    per_unit,
    timed,
)
from repro.experiments.tables import FEATURE_COLUMNS, feature_rows, render_feature_table
from repro.workloads.powerlaw import WebWorkloadConfig


class TestRunnerHelpers:
    def test_timed_and_average(self):
        measurement = timed(lambda: sum(range(1000)))
        assert measurement.seconds >= 0
        assert measurement.result == sum(range(1000))
        assert average_time(lambda: None, repeats=2) >= 0

    def test_per_unit(self):
        assert per_unit(2.0, 4) == 0.5
        assert math.isnan(per_unit(1.0, 0))

    def test_log_log_slope_detects_linear_and_quadratic(self):
        linear = [(x, 1e-5 * x) for x in (10, 100, 1000, 10000)]
        quadratic = [(x, 1e-7 * x * x) for x in (10, 100, 1000, 10000)]
        assert abs(log_log_slope(linear) - 1.0) < 0.01
        assert abs(log_log_slope(quadratic) - 2.0) < 0.01
        assert math.isnan(log_log_slope([(1, 1)]))

    def test_gather_balance(self):
        assert gather_balance([1.0, 1.0, 1.0]) == pytest.approx(1.0)
        # one shard carries everything: mean/max -> 1/n
        assert gather_balance([0.0, 0.0, 3.0]) == pytest.approx(1 / 3)
        assert gather_balance([0.0, 0.0]) == 1.0
        assert math.isnan(gather_balance([]))

    def test_doubling_ratios(self):
        ratios = doubling_ratios([(1, 1.0), (2, 2.0), (4, 8.0)])
        assert ratios == [2.0, 4.0]

    def test_format_table(self):
        rows = [{"a": 1, "b": 0.5}, {"a": 2, "b": None}]
        text = format_table(rows)
        assert "a" in text and "1" in text and "-" in text
        assert format_table([]) == "(no data)"


class TestFigureDrivers:
    def test_fig5_rows(self):
        rows = fig5_lp_exponential.run(cluster_counts=(1, 2), repeats=1)
        assert len(rows) == 2
        assert rows[0]["size"] == 8
        summary = fig5_lp_exponential.summarize(rows)
        assert summary["points"] == 2

    def test_fig8a_rows(self):
        rows = fig8a_cycles.run(ra_sizes=(80, 400), lp_max_clusters=2, repeats=1)
        sizes = [row["size"] for row in rows]
        assert sizes == sorted(sizes)
        assert any(row["ra_seconds"] for row in rows)
        assert any(row["lp_seconds"] for row in rows)
        summary = fig8a_cycles.summarize(rows)
        assert summary["ra_points"] >= 2

    def test_fig8b_rows(self):
        rows = fig8b_web.run(
            config=WebWorkloadConfig(n_domains=300, seed=1),
            edge_fractions=(0.5, 1.0),
            lp_max_size=0,
            repeats=1,
        )
        assert len(rows) == 2
        assert all(row["ra_seconds"] > 0 for row in rows)
        summary = fig8b_web.summarize(rows)
        assert summary["largest_size"] >= rows[0]["size"]

    def test_fig8c_rows(self):
        rows = fig8c_bulk.run(object_counts=(5, 20), lp_max_objects=5, ra_max_objects=20)
        assert len(rows) == 2
        assert all(row["bulk_sql_seconds"] > 0 for row in rows)
        assert rows[0]["per_object_lp_seconds"] is not None
        assert rows[1]["per_object_lp_seconds"] is None
        summary = fig8c_bulk.summarize(rows)
        assert summary["largest_object_count"] == 20

    def test_fig8c_shard_sweep_rows(self):
        sweep = fig8c_bulk.run_shard_sweep(
            object_counts=(30,), shard_counts=(1, 2)
        )
        assert [row["shards"] for row in sweep] == [1, 2]
        summary = fig8c_bulk.summarize_shard_sweep(sweep)
        assert summary["statements_per_shard_fixed"]
        assert summary["one_transaction_per_shard"]
        assert summary["largest_shard_count"] == 2
        assert 0.0 < summary["mean_shard_balance"] <= 1.0

    def test_fig8_incremental_rows(self):
        from repro.experiments import fig8_incremental

        rows = fig8_incremental.run(sizes=(80, 400), workload="fig8a")
        assert [row["workload"] for row in rows] == ["fig8a", "fig8a"]
        assert all(row["byte_identical"] for row in rows)
        assert all(row["dirty_region"] >= 1 for row in rows)
        assert all(row["delta_apply_seconds"] > 0 for row in rows)
        summary = fig8_incremental.summarize(rows)
        assert summary["all_byte_identical"]
        assert summary["largest_size"] == rows[-1]["size"]

    def test_fig8_incremental_web_rows(self):
        from repro.experiments import fig8_incremental

        rows = fig8_incremental.run(sizes=(150,), workload="fig8b")
        assert rows[0]["byte_identical"]
        assert rows[0]["rows_touched"] >= 1

    def test_fig8_incremental_rejects_unknown_workload(self):
        from repro.experiments import fig8_incremental

        with pytest.raises(ValueError):
            fig8_incremental.run(sizes=(80,), workload="fig9z")

    def test_fig11_rows(self):
        rows = fig11_binarization.run(clique_sizes=(4, 6))
        assert all(row["binarized_users"] == row["expected_users"] for row in rows)
        summary = fig11_binarization.summarize(rows)
        assert summary["edge_factor_below_2"]
        assert summary["size_factor_below_3"]

    def test_fig15_rows(self):
        rows = fig15_worstcase.run(block_counts=(5, 10), repeats=1)
        assert [row["k"] for row in rows] == [5, 10]
        assert all(row["size"] == row["expected_size"] for row in rows)


class TestFeatureTable:
    def test_rows_have_all_columns(self):
        rows = feature_rows()
        assert len(rows) >= 5
        for row in rows:
            assert set(FEATURE_COLUMNS) <= set(row)

    def test_this_paper_supports_everything(self):
        rows = {row["system"]: row for row in feature_rows()}
        ours = rows["This paper (trust-mapping resolution)"]
        assert all(ours[column] == "x" for column in FEATURE_COLUMNS)

    def test_render(self):
        text = render_feature_table()
        assert "Orchestra" in text and "Youtopia" in text
