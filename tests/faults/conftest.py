"""Shared helpers for the fault-tolerance test suite."""

from __future__ import annotations

import pytest


@pytest.fixture
def serialized_relation():
    """The byte-level equivalence oracle shared with the bulk suite: the
    full POSS relation of a store (single or sharded) as one canonical
    byte string.  Every chaos test compares a faulted run against its
    fault-free twin through this single serialization.
    """

    def serialize(store) -> bytes:
        rows = sorted(store.possible_table())
        return "\n".join(
            f"{row.user}|{row.key}|{row.value}" for row in rows
        ).encode()

    return serialize


@pytest.fixture
def kill_shard():
    """Take one shard of a ShardedPossStore out of service, durably.

    Closes the shard's live connection and wraps its backend so the next
    ``dead_connects`` reconnect attempts fail with an injected
    unavailability — the shard stays dead through the single-reconnect
    healing in ``ensure_available`` until the scripted faults run out,
    after which ``heal()`` / ``recover_shard()`` succeed (on a fresh,
    empty in-memory database, exercising the rebuild path).
    """
    from repro.faults import FaultInjectingBackend, FaultPolicy, ScriptedFault

    def kill(store, index: int, dead_connects: int = 3):
        shard = store.shards[index]
        policy = FaultPolicy(
            schedule=[
                ScriptedFault("connect", i, shard=index, kind="unavailable")
                for i in range(dead_connects)
            ]
        )
        shard._backend = FaultInjectingBackend(
            shard._backend, policy, shard=index
        )
        shard._connection.close()
        return policy

    return kill
