"""Chaos property suite: faulted runs are byte-identical to fault-free twins.

The core robustness claim of the fault-tolerant execution layer, checked
end-to-end: under seeded probabilistic transient faults — and under
forced mid-run crashes followed by checkpoint-resume — the final POSS
relation is byte-for-byte the relation an undisturbed run produces.
Swept across shard counts {1, 2, 4} and the three backend families
(in-memory sqlite, file-backed sqlite, and a generic DB-API driver).
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.core.errors import BackendUnavailable
from repro.faults import FaultInjectingBackend, FaultPolicy, RetryPolicy, ScriptedFault
from repro.bulk.backends import DbApiBackend, SqliteFileBackend, SqliteMemoryBackend
from repro.bulk.executor import BulkResolver, ConcurrentBulkResolver
from repro.bulk.store import PossStore, ShardedPossStore
from repro.engine import ResolutionEngine
from repro.incremental.deltas import SetBelief
from repro.workloads.bulkload import BELIEF_USERS, figure19_network, generate_objects

from tests.conftest import random_binary_network

SHARD_COUNTS = (1, 2, 4)
BACKENDS = ("memory", "file", "dbapi")

#: No real sleeping in tests.
FAST = RetryPolicy(max_attempts=8, base_delay=0.0, max_delay=0.0)


def backend_factory(kind: str, tmp_path, tag: str):
    """A per-shard-index factory for one of the three backend families."""
    if kind == "memory":
        return lambda index: SqliteMemoryBackend()
    if kind == "file":
        return lambda index: SqliteFileBackend(str(tmp_path / f"{tag}-{index}.db"))

    def dbapi(index: int):
        path = str(tmp_path / f"{tag}-dbapi-{index}.db")
        return DbApiBackend(
            lambda: sqlite3.connect(path, check_same_thread=False),
            name="sqlite-dbapi",
        )

    return dbapi


def clean_store(shards: int, make_inner):
    if shards == 1:
        return PossStore(backend=make_inner(0))
    return ShardedPossStore(shards, backends=[make_inner(i) for i in range(shards)])


def chaos_store(shards: int, make_inner, policy: FaultPolicy):
    """A store whose every shard injects faults from one shared policy."""
    if shards == 1:
        backend = FaultInjectingBackend(make_inner(0), policy)
        return PossStore(backend=backend, retry_policy=FAST)
    backends = [
        FaultInjectingBackend(make_inner(i), policy, shard=i)
        for i in range(shards)
    ]
    return ShardedPossStore(shards, backends=backends, retry_policy=FAST)


def make_resolver(network, store, **kwargs):
    if isinstance(store, ShardedPossStore):
        return ConcurrentBulkResolver(
            network, store=store, explicit_users=BELIEF_USERS, **kwargs
        )
    return BulkResolver(
        network, store=store, explicit_users=BELIEF_USERS, **kwargs
    )


class TestTransientChaos:
    @pytest.mark.parametrize("backend_kind", BACKENDS)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_bulk_run_matches_fault_free_twin(
        self, shards, backend_kind, tmp_path, serialized_relation
    ):
        network = figure19_network()
        objects = generate_objects(12, seed=31)

        clean = make_resolver(
            network, clean_store(shards, backend_factory(backend_kind, tmp_path, "clean"))
        )
        clean.load_beliefs(objects)
        clean.run()
        expected = serialized_relation(clean.store)
        clean.store.close()

        policy = FaultPolicy(
            seed=31 + shards, probability=0.05, sites=("execute", "executemany")
        )
        store = chaos_store(
            shards, backend_factory(backend_kind, tmp_path, "chaos"), policy
        )
        resolver = make_resolver(network, store)
        resolver.load_beliefs(objects)
        report = resolver.run()
        assert serialized_relation(store) == expected
        # A fault can also land on the (unretried) run-start health probe,
        # so retries only bound faults from below.
        assert report.retries <= report.faults_injected
        store.close()

    @pytest.mark.parametrize("seed", (4, 11, 16))
    @pytest.mark.parametrize("shards", (1, 2))
    def test_engine_random_network_chaos(self, seed, shards, serialized_relation):
        """Random binary networks: materialize, then live updates, under
        probabilistic transient faults — always byte-identical to the
        fault-free twin engine."""
        network = random_binary_network(seed, n_nodes=10)
        believers = sorted(
            user
            for user, belief in network.explicit_beliefs.items()
            if belief.positive_value is not None
        )
        if not believers:
            pytest.skip(f"seed {seed} placed no explicit beliefs")

        clean = ResolutionEngine(
            random_binary_network(seed, n_nodes=10),
            store=clean_store(shards, lambda index: SqliteMemoryBackend()),
        )
        policy = FaultPolicy(
            seed=seed, probability=0.05, sites=("execute", "executemany")
        )
        faulted = ResolutionEngine(
            random_binary_network(seed, n_nodes=10),
            store=chaos_store(shards, lambda index: SqliteMemoryBackend(), policy),
        )

        clean.materialize()
        faulted.materialize()
        assert serialized_relation(faulted.store) == serialized_relation(clean.store)

        for value in ("zz", "ww"):
            delta = SetBelief(believers[0], value)
            clean.apply(delta)
            faulted.apply(delta)
            assert serialized_relation(faulted.store) == serialized_relation(
                clean.store
            )
        clean.close()
        faulted.close()


class TestCrashResumeChaos:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_crash_then_resume_matches_twin(
        self, shards, tmp_path, serialized_relation
    ):
        """Forced mid-run unavailability, then checkpoint-resume: the
        journaled prefix is kept, the rest re-runs, and the final relation
        matches the undisturbed twin — for every shard count.  File-backed
        shards, so committed work survives the crash."""
        network = figure19_network()
        objects = generate_objects(8, seed=21)

        clean = make_resolver(
            network, clean_store(shards, backend_factory("file", tmp_path, "twin"))
        )
        clean.load_beliefs(objects)
        clean.run()
        expected = serialized_relation(clean.store)
        clean.store.close()

        for crash_at in (6, 10, 14):
            run_id = f"chaos-{shards}-{crash_at}"
            policy = FaultPolicy(
                schedule=[
                    ScriptedFault(
                        "execute",
                        crash_at,
                        shard=0 if shards > 1 else None,
                        kind="unavailable",
                    )
                ],
                max_faults=1,
            )
            store = chaos_store(
                shards,
                backend_factory("file", tmp_path, f"crash-{shards}-{crash_at}"),
                policy,
            )
            crashing = make_resolver(network, store, checkpoint=run_id)
            try:
                crashing.load_beliefs(objects)
                crashing.run()
            except BackendUnavailable:
                pass  # the crash can land anywhere, including belief load
            policy.schedule = ()  # disarm for the resume and the readback
            if isinstance(store, ShardedPossStore):
                # Sharded runs degrade around the dead shard instead of
                # aborting; heal it (the file-backed data survived).
                for index in store.degraded_shards:
                    store.heal(index)
            resumed = make_resolver(network, store, checkpoint=run_id)
            resumed.load_beliefs(objects)
            resumed.run()
            assert serialized_relation(store) == expected, (shards, crash_at)
            store.close()


class TestEnvGatedChaos:
    def test_store_auto_wraps_backend_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SEED", "7")
        monkeypatch.setenv("REPRO_FAULT_P", "0.0")
        with PossStore() as store:
            assert isinstance(store._backend, FaultInjectingBackend)
            assert store._backend.policy.seed == 7

    def test_unset_env_leaves_backend_bare(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_SEED", raising=False)
        with PossStore() as store:
            assert not isinstance(store._backend, FaultInjectingBackend)
