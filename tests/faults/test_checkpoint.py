"""Checkpoint journaling and resume: interrupted runs complete exactly."""

from __future__ import annotations

import pytest

from repro.core.errors import BackendUnavailable
from repro.core.network import TrustNetwork
from repro.faults import FaultInjectingBackend, FaultPolicy, RetryPolicy, ScriptedFault
from repro.bulk.backends import SqliteFileBackend, SqliteMemoryBackend
from repro.bulk.executor import JOURNAL_BELIEFS_NODE, BulkResolver, ConcurrentBulkResolver
from repro.bulk.store import PossStore, ShardedPossStore
from repro.incremental.deltas import SetBelief
from repro.engine import ResolutionEngine
from repro.workloads.bulkload import BELIEF_USERS, figure19_network, generate_objects

RUN = "test-run"


def fault_backend(schedule, **kwargs):
    return FaultInjectingBackend(
        SqliteMemoryBackend(), FaultPolicy(schedule=schedule, **kwargs)
    )


class TestJournal:
    def test_record_completed_clear(self):
        with PossStore() as store:
            assert store.journal_completed(RUN) == frozenset()
            store.journal_record(RUN, 0)
            store.journal_record(RUN, 3)
            store.journal_record("other", 1)
            assert store.journal_completed(RUN) == frozenset({0, 3})
            assert store.journal_runs() == frozenset({RUN, "other"})
            store.journal_clear(RUN)
            assert store.journal_completed(RUN) == frozenset()
            assert store.journal_runs() == frozenset({"other"})
            store.journal_clear()
            assert store.journal_runs() == frozenset()

    def test_journal_survives_relation_clear(self):
        with PossStore() as store:
            store.journal_record(RUN, 0)
            store.clear()
            assert store.journal_completed(RUN) == frozenset({0})


class TestCheckpointedRun:
    def test_checkpointed_run_matches_plain_run(self, serialized_relation):
        network = figure19_network()
        objects = generate_objects(10, seed=4)

        plain = BulkResolver(network, explicit_users=BELIEF_USERS)
        plain.load_beliefs(objects)
        plain.run()
        expected = serialized_relation(plain.store)
        plain.store.close()

        checkpointed = BulkResolver(
            network, explicit_users=BELIEF_USERS, checkpoint=RUN
        )
        checkpointed.load_beliefs(objects)
        report = checkpointed.run()
        assert report.checkpointed is True
        assert report.nodes_skipped == 0
        # One transaction per DAG node plus the journaled belief load.
        assert report.transactions == len(checkpointed.dag.nodes)
        assert serialized_relation(checkpointed.store) == expected
        checkpointed.store.close()

    def test_completed_run_resumes_as_noop(self, serialized_relation):
        network = figure19_network()
        objects = generate_objects(6, seed=5)
        store = PossStore()
        first = BulkResolver(
            network, store=store, explicit_users=BELIEF_USERS, checkpoint=RUN
        )
        first.load_beliefs(objects)
        first.run()
        snapshot = serialized_relation(store)

        again = BulkResolver(
            network, store=store, explicit_users=BELIEF_USERS, checkpoint=RUN
        )
        report_rows = again.load_beliefs(objects)
        report = again.run()
        assert report_rows == 0  # belief marker present: nothing reloaded
        assert report.nodes_skipped == len(again.dag.nodes)
        assert report.statements == 0
        assert serialized_relation(store) == snapshot
        store.close()

    def test_interrupted_run_resumes_byte_identical(self, serialized_relation):
        """Crash mid-run (injected unavailability), then resume with the
        same run id: the journaled prefix is skipped and the result is
        byte-identical to an uninterrupted run."""
        network = figure19_network()
        objects = generate_objects(10, seed=6)

        plain = BulkResolver(network, explicit_users=BELIEF_USERS)
        plain.load_beliefs(objects)
        plain.run()
        expected = serialized_relation(plain.store)
        plain.store.close()

        # Enough statements to die mid-plan, after some nodes committed.
        backend = fault_backend(
            [ScriptedFault("execute", 12, kind="unavailable")], max_faults=1
        )
        store = PossStore(backend=backend)
        crashing = BulkResolver(
            network, store=store, explicit_users=BELIEF_USERS, checkpoint=RUN
        )
        crashing.load_beliefs(objects)
        with pytest.raises(BackendUnavailable):
            crashing.run()
        committed = store.journal_completed(RUN)
        assert committed  # the belief marker at minimum
        assert JOURNAL_BELIEFS_NODE in committed

        resumed = BulkResolver(
            network, store=store, explicit_users=BELIEF_USERS, checkpoint=RUN
        )
        resumed.load_beliefs(objects)
        report = resumed.run()
        assert report.nodes_skipped == len(committed) - 1
        assert serialized_relation(store) == expected
        store.close()

    def test_crash_points_sweep(self, serialized_relation):
        """Resume is sound no matter which statement the crash hits."""
        network = figure19_network()
        objects = generate_objects(4, seed=7)
        plain = BulkResolver(network, explicit_users=BELIEF_USERS)
        plain.load_beliefs(objects)
        plain.run()
        expected = serialized_relation(plain.store)
        plain.store.close()

        for crash_at in (6, 9, 14, 20):
            backend = fault_backend(
                [ScriptedFault("execute", crash_at, kind="unavailable")],
                max_faults=1,
            )
            store = PossStore(backend=backend)
            run_id = f"sweep-{crash_at}"
            crashing = BulkResolver(
                network, store=store, explicit_users=BELIEF_USERS, checkpoint=run_id
            )
            crashing.load_beliefs(objects)
            try:
                crashing.run()
            except BackendUnavailable:
                resumed = BulkResolver(
                    network,
                    store=store,
                    explicit_users=BELIEF_USERS,
                    checkpoint=run_id,
                )
                resumed.load_beliefs(objects)
                resumed.run()
            assert serialized_relation(store) == expected, crash_at
            store.close()


class TestShardedCheckpoint:
    def test_sharded_checkpoint_matches_plain(self, serialized_relation):
        network = figure19_network()
        objects = generate_objects(9, seed=8)
        plain = ConcurrentBulkResolver(network, shards=2, explicit_users=BELIEF_USERS)
        plain.load_beliefs(objects)
        plain.run()
        expected = serialized_relation(plain.store)
        plain.store.close()

        store = ShardedPossStore(2)
        checkpointed = ConcurrentBulkResolver(
            network, store=store, explicit_users=BELIEF_USERS, checkpoint=RUN
        )
        checkpointed.load_beliefs(objects)
        report = checkpointed.run()
        assert report.checkpointed is True
        assert serialized_relation(store) == expected
        store.close()

    def test_dead_shard_is_quarantined_not_fatal(self, kill_shard):
        network = figure19_network()
        objects = generate_objects(6, seed=9)
        store = ShardedPossStore(2)
        resolver = ConcurrentBulkResolver(
            network, store=store, explicit_users=BELIEF_USERS, checkpoint=RUN
        )
        resolver.load_beliefs(objects)
        kill_shard(store, 1)
        report = resolver.run()  # shard 1 is dead; run completes degraded
        assert report.checkpointed is True
        assert store.degraded_shards == (1,)
        # The healthy shard's slice resolved and keeps answering.
        assert store.shards[0].keys()
        for key in store.shards[0].keys():
            assert store.possible_values("x6", key)
        store.close()


class TestEngineCheckpointResume:
    def _network(self):
        tn = TrustNetwork()
        tn.add_trust("mirror", "source", priority=2)
        tn.add_trust("mirror", "backup", priority=1)
        tn.add_trust("copy", "mirror", priority=1)
        tn.set_explicit_belief("source", "v")
        tn.set_explicit_belief("backup", "w")
        return tn

    def test_engine_checkpoint_reports_and_matches(self, serialized_relation):
        plain = ResolutionEngine(self._network())
        plain.materialize()
        expected = serialized_relation(plain.store)
        plain.close()

        engine = ResolutionEngine(self._network())
        report = engine.materialize(checkpoint=True)
        assert report.checkpointed is True
        assert report.nodes_skipped == 0
        assert serialized_relation(engine.store) == expected
        engine.close()

    def test_fresh_materialize_clears_stale_journal(self, serialized_relation):
        """Back-to-back checkpointed materializes must not no-op the second
        run on the first run's journal."""
        engine = ResolutionEngine(self._network())
        engine.materialize(checkpoint=True)
        snapshot = serialized_relation(engine.store)
        report = engine.materialize(checkpoint=True)
        assert report.nodes_skipped == 0
        assert serialized_relation(engine.store) == snapshot
        engine.close()

    def test_engine_resume_after_crash(self, serialized_relation, tmp_path):
        """Sweep the crash point across the whole checkpointed run.

        File-backed store: committed nodes survive the (single) reconnect
        that heals an unavailable connection, so every crash point —
        including one hitting the health probe itself — resumes to the
        byte-identical relation.  (A crashed *in-memory* database loses
        its content by definition; the quarantine/rebuild path covers
        that case, see test_quarantine.)
        """
        plain = ResolutionEngine(self._network())
        plain.materialize()
        expected = serialized_relation(plain.store)
        plain.close()

        saw_skip = False
        for crash_at in range(8, 20):
            backend = FaultInjectingBackend(
                SqliteFileBackend(str(tmp_path / f"crash{crash_at}.db")),
                FaultPolicy(
                    schedule=[
                        ScriptedFault("execute", crash_at, kind="unavailable")
                    ],
                    max_faults=1,
                ),
            )
            store = PossStore(backend=backend)
            engine = ResolutionEngine(self._network(), store=store)
            try:
                engine.materialize(checkpoint=True)
            except BackendUnavailable:
                report = engine.materialize(resume=True)
                assert report.checkpointed is True
                saw_skip = saw_skip or report.nodes_skipped > 0
            # Disarm: a crash point past the end of the run must not fire
            # during verification.
            backend.policy.schedule = ()
            assert serialized_relation(store) == expected, crash_at
            # The resumed relation keeps serving queries and deltas.
            assert engine.query("copy", "k0") == frozenset({"v"})
            engine.apply(SetBelief("source", "z"))
            assert engine.query("copy", "k0") == frozenset({"z"})
            engine.apply(SetBelief("source", "v"))
            engine.close()
        # At least one crash point hit after a committed node, so a resume
        # actually skipped journaled work somewhere in the sweep.
        assert saw_skip

    def test_run_id_is_plan_stable(self):
        engine = ResolutionEngine(self._network())
        engine._ensure_plan()
        first = engine._run_id()
        assert first == engine._run_id()
        other = ResolutionEngine(self._network())
        other._ensure_plan()
        assert other._run_id() == first  # same plan, same id
        engine.close()
        other.close()
