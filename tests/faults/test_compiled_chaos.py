"""Chaos tests for the compiled scheduler: faults inside pushed-down regions.

A compiled region is one SQL statement covering many plan steps, so the
fault-tolerance machinery must treat it as one unit: transient faults retry
the whole region statement, a crash between regions resumes at a region
boundary (never inside one), and a quarantined shard degrades the run while
the healthy shards keep executing compiled.  Every scenario is locked
against a fault-free twin through the byte-identity oracle.
"""

from __future__ import annotations

import random

import pytest

from repro.core.errors import BackendUnavailable
from repro.core.network import TrustNetwork
from repro.faults import FaultInjectingBackend, FaultPolicy, RetryPolicy, ScriptedFault
from repro.bulk.backends import SqliteFileBackend, SqliteMemoryBackend
from repro.bulk.executor import BulkResolver, ConcurrentBulkResolver
from repro.bulk.store import PossStore, ShardedPossStore
from repro.engine import ResolutionEngine
from repro.workloads.bulkload import BELIEF_USERS, figure19_network, generate_objects

RUN = "compiled-run"

RETRY_FAST = RetryPolicy(max_attempts=8, base_delay=0.0, max_delay=0.0)


def _twin_relation(network, objects, serialized_relation, scheduler="compiled"):
    """The fault-free reference run of the same plan and rows."""
    resolver = BulkResolver(
        network, explicit_users=BELIEF_USERS, scheduler=scheduler
    )
    resolver.load_beliefs(objects)
    resolver.run()
    expected = serialized_relation(resolver.store)
    resolver.store.close()
    return expected


class TestTransientFaultsInsideRegions:
    def test_region_statements_retry_transparently(self, serialized_relation):
        """Probabilistic transient faults on execute hit the big region
        statements too; the retry loop absorbs every one of them and the
        relation matches the fault-free twin byte for byte."""
        network = figure19_network()
        objects = generate_objects(8, seed=31)
        expected = _twin_relation(network, objects, serialized_relation)

        saw_faults = False
        for seed in range(6):
            backend = FaultInjectingBackend(
                SqliteMemoryBackend(),
                FaultPolicy(seed=seed, probability=0.25, sites=("execute",)),
            )
            store = PossStore(backend=backend, retry_policy=RETRY_FAST)
            resolver = BulkResolver(
                network,
                store=store,
                explicit_users=BELIEF_USERS,
                scheduler="compiled",
            )
            resolver.load_beliefs(objects)
            report = resolver.run()
            assert serialized_relation(store) == expected, f"seed {seed}"
            assert report.scheduler == "compiled"
            assert report.retries == report.faults_injected
            saw_faults = saw_faults or report.faults_injected > 0
            store.close()
        assert saw_faults  # the sweep actually injected something

    def test_sharded_compiled_retries_per_shard(self, serialized_relation):
        network = figure19_network()
        objects = generate_objects(10, seed=32)
        expected = _twin_relation(network, objects, serialized_relation)

        backends = [
            FaultInjectingBackend(
                SqliteMemoryBackend(),
                FaultPolicy(seed=40 + i, probability=0.2, sites=("execute",)),
                shard=i,
            )
            for i in range(2)
        ]
        store = ShardedPossStore(2, backends=backends, retry_policy=RETRY_FAST)
        resolver = ConcurrentBulkResolver(
            network,
            store=store,
            explicit_users=BELIEF_USERS,
            scheduler="compiled",
        )
        resolver.load_beliefs(objects)
        report = resolver.run()
        assert serialized_relation(store) == expected
        assert report.retries == report.faults_injected
        assert report.regions_compiled == resolver.compiled.region_count * 2
        store.close()


class TestCrashAndResumeAtRegionBoundaries:
    def test_crash_mid_run_resumes_skipping_committed_regions(
        self, serialized_relation, tmp_path
    ):
        """Sweep the crash point across a checkpointed compiled run on a
        file-backed store: whatever region the crash interrupts, the resume
        re-executes exactly the uncommitted suffix and lands byte-identical
        to the fault-free twin."""
        network = figure19_network()
        objects = generate_objects(6, seed=33)
        expected = _twin_relation(network, objects, serialized_relation)

        saw_skip = False
        saw_crash = False
        for crash_at in range(2, 24):
            backend = FaultInjectingBackend(
                SqliteFileBackend(str(tmp_path / f"crash{crash_at}.db")),
                FaultPolicy(
                    schedule=[
                        ScriptedFault("execute", crash_at, kind="unavailable")
                    ],
                    max_faults=1,
                ),
            )
            try:
                store = PossStore(backend=backend)
            except BackendUnavailable:
                continue  # the crash hit schema setup, not the run
            run_id = f"{RUN}-{crash_at}"
            crashing = BulkResolver(
                network,
                store=store,
                explicit_users=BELIEF_USERS,
                scheduler="compiled",
                checkpoint=run_id,
            )
            try:
                crashing.load_beliefs(objects)
                crashing.run()
            except BackendUnavailable:
                saw_crash = True
                committed = store.journal_completed(run_id)
                markers = set(crashing.compiled.journal_markers())
                # Only region boundaries (and the belief load) ever commit.
                assert committed <= markers | {-1}
                resumed = BulkResolver(
                    network,
                    store=store,
                    explicit_users=BELIEF_USERS,
                    scheduler="compiled",
                    checkpoint=run_id,
                )
                resumed.load_beliefs(objects)
                report = resumed.run()
                assert report.checkpointed is True
                saw_skip = saw_skip or report.nodes_skipped > 0
            backend.policy.schedule = ()  # disarm for verification reads
            assert serialized_relation(store) == expected, crash_at
            store.close()
        assert saw_crash
        assert saw_skip

    def test_engine_compiled_resume_after_crash(
        self, serialized_relation, tmp_path
    ):
        """materialize(compiled=True, checkpoint=True) crash-resumes through
        the façade, skipping only committed regions."""
        tn = TrustNetwork()
        tn.add_trust("b", "a", priority=1)
        tn.add_trust("c", "b", priority=1)
        tn.add_trust("d", "c", priority=1)
        tn.add_trust("p", "d", priority=1)
        tn.add_trust("p", "q", priority=1)
        tn.add_trust("q", "p", priority=1)
        tn.set_explicit_belief("a", "v")

        plain = ResolutionEngine(tn.copy())
        plain.materialize()
        expected = serialized_relation(plain.store)
        plain.close()

        saw_skip = False
        for crash_at in range(2, 24):
            backend = FaultInjectingBackend(
                SqliteFileBackend(str(tmp_path / f"eng{crash_at}.db")),
                FaultPolicy(
                    schedule=[
                        ScriptedFault("execute", crash_at, kind="unavailable")
                    ],
                    max_faults=1,
                ),
            )
            try:
                store = PossStore(backend=backend)
                engine = ResolutionEngine(tn.copy(), store=store)
            except BackendUnavailable:
                continue  # the crash hit schema setup, not the run
            try:
                engine.materialize(compiled=True, checkpoint=True)
            except BackendUnavailable:
                report = engine.materialize(resume=True, compiled=True)
                assert report.checkpointed is True
                assert report.scheduler == "compiled"
                saw_skip = saw_skip or report.nodes_skipped > 0
            backend.policy.schedule = ()
            assert serialized_relation(store) == expected, crash_at
            engine.close()
        assert saw_skip

    def test_compiled_and_node_journals_never_mix(self):
        """The compiled run id is distinct from the node-at-a-time id, so a
        node-mode journal can never satisfy a whole compiled region (and
        vice versa)."""
        tn = TrustNetwork()
        tn.add_trust("mirror", "source", priority=1)
        tn.set_explicit_belief("source", "v")
        engine = ResolutionEngine(tn)
        engine.materialize(checkpoint=True)
        engine.materialize(checkpoint=True, compiled=True)
        runs = engine.store.journal_runs()
        assert len(runs) == 1  # a fresh materialize clears stale journals
        (compiled_run,) = runs
        assert compiled_run.endswith("-compiled")
        assert compiled_run != engine._run_id()
        assert compiled_run == engine._run_id() + "-compiled"
        engine.close()


class TestQuarantineUnderCompiledExecution:
    def test_dead_shard_degrades_while_compiled_runs_on_the_rest(
        self, kill_shard
    ):
        network = figure19_network()
        objects = generate_objects(6, seed=34)
        store = ShardedPossStore(2)
        resolver = ConcurrentBulkResolver(
            network,
            store=store,
            explicit_users=BELIEF_USERS,
            scheduler="compiled",
            checkpoint=RUN,
        )
        resolver.load_beliefs(objects)
        kill_shard(store, 1)
        report = resolver.run()  # shard 1 is dead; run completes degraded
        assert report.checkpointed is True
        assert report.scheduler == "compiled"
        assert store.degraded_shards == (1,)
        # The healthy shard ran compiled, not statement-at-a-time.
        assert report.regions_compiled == resolver.compiled.region_count
        assert store.shards[0].keys()
        for key in store.shards[0].keys():
            assert store.possible_values("x6", key)
        store.close()

    def test_degraded_compiled_slice_matches_healthy_twin(
        self, kill_shard, serialized_relation
    ):
        """The healthy shard's slice under degradation is byte-identical to
        the same shard's slice in an all-healthy compiled run."""
        network = figure19_network()
        objects = generate_objects(8, seed=35)

        healthy = ShardedPossStore(2)
        twin = ConcurrentBulkResolver(
            network,
            store=healthy,
            explicit_users=BELIEF_USERS,
            scheduler="compiled",
        )
        twin.load_beliefs(objects)
        twin.run()
        expected_slice = serialized_relation(healthy.shards[0])
        healthy.close()

        store = ShardedPossStore(2)
        resolver = ConcurrentBulkResolver(
            network,
            store=store,
            explicit_users=BELIEF_USERS,
            scheduler="compiled",
            checkpoint=RUN,
        )
        resolver.load_beliefs(objects)
        kill_shard(store, 1)
        resolver.run()
        assert serialized_relation(store.shards[0]) == expected_slice
        store.close()


class TestSkepticBlockedFloodChaos:
    """Faults inside blocked-flood region statements retry like any other
    region; the constrained relation (⊥ included) matches the fault-free
    twin byte for byte."""

    def _workload(self):
        from repro.workloads.bulkload import skeptic_chain_network

        network, constraints = skeptic_chain_network(40)
        rows = [
            (user, f"k{i}", f"a{4 * (i % 9 + 1)}" if i % 2 else f"b{i}")
            for i in range(5)
            for user in BELIEF_USERS
        ]
        return network, constraints, rows

    def test_blocked_flood_statements_retry_transparently(
        self, serialized_relation
    ):
        from repro.bulk.executor import SkepticBulkResolver

        network, constraints, rows = self._workload()
        twin = SkepticBulkResolver(
            network,
            positive_users=BELIEF_USERS,
            negative_constraints=constraints,
            scheduler="compiled",
        )
        twin.load_beliefs(rows)
        twin.run()
        expected = serialized_relation(twin.store)
        kinds = {region.kind for region in twin.compiled.regions}
        assert "blocked_flood" in kinds
        twin.store.close()

        saw_faults = False
        for seed in range(6):
            backend = FaultInjectingBackend(
                SqliteMemoryBackend(),
                FaultPolicy(seed=60 + seed, probability=0.25, sites=("execute",)),
            )
            store = PossStore(backend=backend, retry_policy=RETRY_FAST)
            resolver = SkepticBulkResolver(
                network,
                positive_users=BELIEF_USERS,
                negative_constraints=constraints,
                store=store,
                scheduler="compiled",
            )
            resolver.load_beliefs(rows)
            report = resolver.run()
            assert serialized_relation(store) == expected, f"seed {seed}"
            assert report.scheduler == "compiled"
            assert report.regions_compiled > 0
            assert report.retries == report.faults_injected
            saw_faults = saw_faults or report.faults_injected > 0
            store.close()
        assert saw_faults

    def test_blocked_flood_crash_resumes_at_region_boundaries(
        self, serialized_relation, tmp_path
    ):
        from repro.bulk.executor import SkepticBulkResolver

        network, constraints, rows = self._workload()
        twin = SkepticBulkResolver(
            network,
            positive_users=BELIEF_USERS,
            negative_constraints=constraints,
            scheduler="compiled",
        )
        twin.load_beliefs(rows)
        twin.run()
        expected = serialized_relation(twin.store)
        twin.store.close()

        saw_crash = False
        for crash_at in range(3, 18):
            backend = FaultInjectingBackend(
                SqliteFileBackend(str(tmp_path / f"sk{crash_at}.db")),
                FaultPolicy(
                    schedule=[
                        ScriptedFault("execute", crash_at, kind="unavailable")
                    ],
                    max_faults=1,
                ),
            )
            try:
                store = PossStore(backend=backend)
            except BackendUnavailable:
                continue
            run_id = f"skeptic-{crash_at}"
            crashing = SkepticBulkResolver(
                network,
                positive_users=BELIEF_USERS,
                negative_constraints=constraints,
                store=store,
                scheduler="compiled",
                checkpoint=run_id,
            )
            try:
                crashing.load_beliefs(rows)
                crashing.run()
            except BackendUnavailable:
                saw_crash = True
                resumed = SkepticBulkResolver(
                    network,
                    positive_users=BELIEF_USERS,
                    negative_constraints=constraints,
                    store=store,
                    scheduler="compiled",
                    checkpoint=run_id,
                )
                resumed.load_beliefs(rows)
                report = resumed.run()
                assert report.checkpointed is True
            backend.policy.schedule = ()
            assert serialized_relation(store) == expected, crash_at
            store.close()
        assert saw_crash


class TestConcurrentRegionChaos:
    """Concurrent region workers under injected faults: the relation is
    byte-identical to the fault-free sequential twin, with per-statement
    retries absorbing transient errors in any worker thread."""

    def _workload(self):
        from repro.bulk.compile import RegionLimits, compile_plan
        from repro.bulk.planner import plan_resolution
        from repro.workloads.bulkload import multi_chain_network

        network, roots = multi_chain_network(4, 20)
        plan = plan_resolution(network, explicit_users=roots)
        limits = RegionLimits(max_copy_edges=20, max_flood_pairs=20)
        compiled = compile_plan(plan, limits=limits)
        rows = [(root, f"k{i}", f"v{i}") for root in roots for i in range(3)]
        return network, roots, plan, compiled, rows

    def test_concurrent_regions_match_sequential_twin_under_faults(
        self, serialized_relation, tmp_path
    ):
        network, roots, plan, compiled, rows = self._workload()
        twin_store = PossStore()
        twin = BulkResolver(
            network, store=twin_store, explicit_users=roots, plan=plan
        )
        twin.load_beliefs(rows)
        twin.run()
        expected = serialized_relation(twin_store)
        twin_store.close()

        saw_faults = saw_overlap = False
        for seed in range(6):
            backend = FaultInjectingBackend(
                SqliteFileBackend(str(tmp_path / f"cw{seed}.db")),
                FaultPolicy(seed=80 + seed, probability=0.15, sites=("execute",)),
            )
            if not backend.supports_concurrent_statements:
                pytest.skip("sqlite build is not serialized-threadsafe")
            store = PossStore(backend=backend, retry_policy=RETRY_FAST)
            resolver = BulkResolver(
                network,
                store=store,
                explicit_users=roots,
                scheduler="compiled",
                workers=4,
                plan=plan,
                compiled_plan=compiled,
            )
            resolver.load_beliefs(rows)
            report = resolver.run()
            assert serialized_relation(store) == expected, f"seed {seed}"
            assert report.workers == 4
            assert report.retries == report.faults_injected
            saw_faults = saw_faults or report.faults_injected > 0
            saw_overlap = saw_overlap or report.stages_overlapped > 0
            store.close()
        assert saw_faults


class TestConcurrentCheckpointedRecovery:
    """The threaded sharded recovery path: concurrent per-shard resume
    lands byte-identical, reports its lanes, and still quarantines."""

    def test_threaded_recovery_matches_fault_free_twin(
        self, serialized_relation, tmp_path
    ):
        network = figure19_network()
        objects = generate_objects(8, seed=36)

        healthy = ShardedPossStore(
            2,
            backends=[
                SqliteFileBackend(str(tmp_path / f"twin-{i}.db"))
                for i in range(2)
            ],
        )
        twin = ConcurrentBulkResolver(
            network,
            store=healthy,
            explicit_users=BELIEF_USERS,
            scheduler="compiled",
        )
        twin.load_beliefs(objects)
        twin.run()
        expected = serialized_relation(healthy)
        concurrent = healthy.supports_concurrent_replay
        healthy.close()

        saw_quarantine = False
        for crash_at in range(3, 16):
            backends = [
                FaultInjectingBackend(
                    SqliteFileBackend(str(tmp_path / f"rec{crash_at}-{i}.db")),
                    FaultPolicy(
                        schedule=[
                            ScriptedFault(
                                "execute", crash_at, shard=i, kind="unavailable"
                            )
                        ]
                        if i == 1
                        else [],
                        max_faults=1,
                    ),
                    shard=i,
                )
                for i in range(2)
            ]
            try:
                store = ShardedPossStore(2, backends=backends)
            except BackendUnavailable:
                continue
            run_id = f"recover-{crash_at}"
            crashing = ConcurrentBulkResolver(
                network,
                store=store,
                explicit_users=BELIEF_USERS,
                scheduler="compiled",
                checkpoint=run_id,
            )
            # A shard fault during the checkpointed run quarantines the
            # shard (the run completes degraded); one hitting the belief
            # load raises instead.  Either way the resume path repairs it.
            try:
                crashing.load_beliefs(objects)
                crashing.run()
            except BackendUnavailable:
                pass
            for backend in backends:
                backend.policy.schedule = ()
            if store.degraded_shards or serialized_relation(store) != expected:
                saw_quarantine = saw_quarantine or bool(store.degraded_shards)
                if store.degraded_shards:
                    store.heal(1)
                resumed = ConcurrentBulkResolver(
                    network,
                    store=store,
                    explicit_users=BELIEF_USERS,
                    scheduler="compiled",
                    checkpoint=run_id,
                )
                resumed.load_beliefs(objects)
                report = resumed.run()
                assert report.checkpointed is True
                assert report.workers == (2 if concurrent else 1)
            for backend in backends:
                backend.policy.schedule = ()
            assert serialized_relation(store) == expected, crash_at
            store.close()
        assert saw_quarantine
