"""Chaos tests for the compiled scheduler: faults inside pushed-down regions.

A compiled region is one SQL statement covering many plan steps, so the
fault-tolerance machinery must treat it as one unit: transient faults retry
the whole region statement, a crash between regions resumes at a region
boundary (never inside one), and a quarantined shard degrades the run while
the healthy shards keep executing compiled.  Every scenario is locked
against a fault-free twin through the byte-identity oracle.
"""

from __future__ import annotations

import random

import pytest

from repro.core.errors import BackendUnavailable
from repro.core.network import TrustNetwork
from repro.faults import FaultInjectingBackend, FaultPolicy, RetryPolicy, ScriptedFault
from repro.bulk.backends import SqliteFileBackend, SqliteMemoryBackend
from repro.bulk.executor import BulkResolver, ConcurrentBulkResolver
from repro.bulk.store import PossStore, ShardedPossStore
from repro.engine import ResolutionEngine
from repro.workloads.bulkload import BELIEF_USERS, figure19_network, generate_objects

RUN = "compiled-run"

RETRY_FAST = RetryPolicy(max_attempts=8, base_delay=0.0, max_delay=0.0)


def _twin_relation(network, objects, serialized_relation, scheduler="compiled"):
    """The fault-free reference run of the same plan and rows."""
    resolver = BulkResolver(
        network, explicit_users=BELIEF_USERS, scheduler=scheduler
    )
    resolver.load_beliefs(objects)
    resolver.run()
    expected = serialized_relation(resolver.store)
    resolver.store.close()
    return expected


class TestTransientFaultsInsideRegions:
    def test_region_statements_retry_transparently(self, serialized_relation):
        """Probabilistic transient faults on execute hit the big region
        statements too; the retry loop absorbs every one of them and the
        relation matches the fault-free twin byte for byte."""
        network = figure19_network()
        objects = generate_objects(8, seed=31)
        expected = _twin_relation(network, objects, serialized_relation)

        saw_faults = False
        for seed in range(6):
            backend = FaultInjectingBackend(
                SqliteMemoryBackend(),
                FaultPolicy(seed=seed, probability=0.25, sites=("execute",)),
            )
            store = PossStore(backend=backend, retry_policy=RETRY_FAST)
            resolver = BulkResolver(
                network,
                store=store,
                explicit_users=BELIEF_USERS,
                scheduler="compiled",
            )
            resolver.load_beliefs(objects)
            report = resolver.run()
            assert serialized_relation(store) == expected, f"seed {seed}"
            assert report.scheduler == "compiled"
            assert report.retries == report.faults_injected
            saw_faults = saw_faults or report.faults_injected > 0
            store.close()
        assert saw_faults  # the sweep actually injected something

    def test_sharded_compiled_retries_per_shard(self, serialized_relation):
        network = figure19_network()
        objects = generate_objects(10, seed=32)
        expected = _twin_relation(network, objects, serialized_relation)

        backends = [
            FaultInjectingBackend(
                SqliteMemoryBackend(),
                FaultPolicy(seed=40 + i, probability=0.2, sites=("execute",)),
                shard=i,
            )
            for i in range(2)
        ]
        store = ShardedPossStore(2, backends=backends, retry_policy=RETRY_FAST)
        resolver = ConcurrentBulkResolver(
            network,
            store=store,
            explicit_users=BELIEF_USERS,
            scheduler="compiled",
        )
        resolver.load_beliefs(objects)
        report = resolver.run()
        assert serialized_relation(store) == expected
        assert report.retries == report.faults_injected
        assert report.regions_compiled == resolver.compiled.region_count * 2
        store.close()


class TestCrashAndResumeAtRegionBoundaries:
    def test_crash_mid_run_resumes_skipping_committed_regions(
        self, serialized_relation, tmp_path
    ):
        """Sweep the crash point across a checkpointed compiled run on a
        file-backed store: whatever region the crash interrupts, the resume
        re-executes exactly the uncommitted suffix and lands byte-identical
        to the fault-free twin."""
        network = figure19_network()
        objects = generate_objects(6, seed=33)
        expected = _twin_relation(network, objects, serialized_relation)

        saw_skip = False
        saw_crash = False
        for crash_at in range(2, 24):
            backend = FaultInjectingBackend(
                SqliteFileBackend(str(tmp_path / f"crash{crash_at}.db")),
                FaultPolicy(
                    schedule=[
                        ScriptedFault("execute", crash_at, kind="unavailable")
                    ],
                    max_faults=1,
                ),
            )
            try:
                store = PossStore(backend=backend)
            except BackendUnavailable:
                continue  # the crash hit schema setup, not the run
            run_id = f"{RUN}-{crash_at}"
            crashing = BulkResolver(
                network,
                store=store,
                explicit_users=BELIEF_USERS,
                scheduler="compiled",
                checkpoint=run_id,
            )
            try:
                crashing.load_beliefs(objects)
                crashing.run()
            except BackendUnavailable:
                saw_crash = True
                committed = store.journal_completed(run_id)
                markers = set(crashing.compiled.journal_markers())
                # Only region boundaries (and the belief load) ever commit.
                assert committed <= markers | {-1}
                resumed = BulkResolver(
                    network,
                    store=store,
                    explicit_users=BELIEF_USERS,
                    scheduler="compiled",
                    checkpoint=run_id,
                )
                resumed.load_beliefs(objects)
                report = resumed.run()
                assert report.checkpointed is True
                saw_skip = saw_skip or report.nodes_skipped > 0
            backend.policy.schedule = ()  # disarm for verification reads
            assert serialized_relation(store) == expected, crash_at
            store.close()
        assert saw_crash
        assert saw_skip

    def test_engine_compiled_resume_after_crash(
        self, serialized_relation, tmp_path
    ):
        """materialize(compiled=True, checkpoint=True) crash-resumes through
        the façade, skipping only committed regions."""
        tn = TrustNetwork()
        tn.add_trust("b", "a", priority=1)
        tn.add_trust("c", "b", priority=1)
        tn.add_trust("d", "c", priority=1)
        tn.add_trust("p", "d", priority=1)
        tn.add_trust("p", "q", priority=1)
        tn.add_trust("q", "p", priority=1)
        tn.set_explicit_belief("a", "v")

        plain = ResolutionEngine(tn.copy())
        plain.materialize()
        expected = serialized_relation(plain.store)
        plain.close()

        saw_skip = False
        for crash_at in range(2, 24):
            backend = FaultInjectingBackend(
                SqliteFileBackend(str(tmp_path / f"eng{crash_at}.db")),
                FaultPolicy(
                    schedule=[
                        ScriptedFault("execute", crash_at, kind="unavailable")
                    ],
                    max_faults=1,
                ),
            )
            try:
                store = PossStore(backend=backend)
                engine = ResolutionEngine(tn.copy(), store=store)
            except BackendUnavailable:
                continue  # the crash hit schema setup, not the run
            try:
                engine.materialize(compiled=True, checkpoint=True)
            except BackendUnavailable:
                report = engine.materialize(resume=True, compiled=True)
                assert report.checkpointed is True
                assert report.scheduler == "compiled"
                saw_skip = saw_skip or report.nodes_skipped > 0
            backend.policy.schedule = ()
            assert serialized_relation(store) == expected, crash_at
            engine.close()
        assert saw_skip

    def test_compiled_and_node_journals_never_mix(self):
        """The compiled run id is distinct from the node-at-a-time id, so a
        node-mode journal can never satisfy a whole compiled region (and
        vice versa)."""
        tn = TrustNetwork()
        tn.add_trust("mirror", "source", priority=1)
        tn.set_explicit_belief("source", "v")
        engine = ResolutionEngine(tn)
        engine.materialize(checkpoint=True)
        engine.materialize(checkpoint=True, compiled=True)
        runs = engine.store.journal_runs()
        assert len(runs) == 1  # a fresh materialize clears stale journals
        (compiled_run,) = runs
        assert compiled_run.endswith("-compiled")
        assert compiled_run != engine._run_id()
        assert compiled_run == engine._run_id() + "-compiled"
        engine.close()


class TestQuarantineUnderCompiledExecution:
    def test_dead_shard_degrades_while_compiled_runs_on_the_rest(
        self, kill_shard
    ):
        network = figure19_network()
        objects = generate_objects(6, seed=34)
        store = ShardedPossStore(2)
        resolver = ConcurrentBulkResolver(
            network,
            store=store,
            explicit_users=BELIEF_USERS,
            scheduler="compiled",
            checkpoint=RUN,
        )
        resolver.load_beliefs(objects)
        kill_shard(store, 1)
        report = resolver.run()  # shard 1 is dead; run completes degraded
        assert report.checkpointed is True
        assert report.scheduler == "compiled"
        assert store.degraded_shards == (1,)
        # The healthy shard ran compiled, not statement-at-a-time.
        assert report.regions_compiled == resolver.compiled.region_count
        assert store.shards[0].keys()
        for key in store.shards[0].keys():
            assert store.possible_values("x6", key)
        store.close()

    def test_degraded_compiled_slice_matches_healthy_twin(
        self, kill_shard, serialized_relation
    ):
        """The healthy shard's slice under degradation is byte-identical to
        the same shard's slice in an all-healthy compiled run."""
        network = figure19_network()
        objects = generate_objects(8, seed=35)

        healthy = ShardedPossStore(2)
        twin = ConcurrentBulkResolver(
            network,
            store=healthy,
            explicit_users=BELIEF_USERS,
            scheduler="compiled",
        )
        twin.load_beliefs(objects)
        twin.run()
        expected_slice = serialized_relation(healthy.shards[0])
        healthy.close()

        store = ShardedPossStore(2)
        resolver = ConcurrentBulkResolver(
            network,
            store=store,
            explicit_users=BELIEF_USERS,
            scheduler="compiled",
            checkpoint=RUN,
        )
        resolver.load_beliefs(objects)
        kill_shard(store, 1)
        resolver.run()
        assert serialized_relation(store.shards[0]) == expected_slice
        store.close()
