"""Deterministic fault policies: seeded streams, scripts, env gating."""

from __future__ import annotations

import pytest

from repro.core.errors import (
    BackendUnavailable,
    BulkProcessingError,
    StatementTimeout,
    TransientBackendError,
)
from repro.faults import (
    FAULT_KINDS,
    FAULT_SITES,
    FaultInjectingBackend,
    FaultPolicy,
    ScriptedFault,
)
from repro.bulk.backends import SqliteMemoryBackend


def fault_trace(policy: FaultPolicy, site: str, calls: int, shard=None):
    """Which of ``calls`` consecutive checks at ``site`` would fail."""
    trace = []
    for index in range(calls):
        try:
            policy.check(site, shard)
            trace.append(False)
        except tuple(FAULT_KINDS.values()):
            trace.append(True)
    return trace


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        first = fault_trace(FaultPolicy(seed=7, probability=0.3), "execute", 200)
        second = fault_trace(FaultPolicy(seed=7, probability=0.3), "execute", 200)
        assert first == second
        assert any(first)
        assert not all(first)

    def test_different_seeds_differ(self):
        first = fault_trace(FaultPolicy(seed=1, probability=0.3), "execute", 200)
        second = fault_trace(FaultPolicy(seed=2, probability=0.3), "execute", 200)
        assert first != second

    def test_streams_are_independent_per_site_and_shard(self):
        """Advancing one stream never shifts another stream's decisions —
        the property that makes schedules stable across interleavings."""
        lone = FaultPolicy(seed=3, probability=0.3)
        expected = fault_trace(lone, "execute", 100, shard=1)

        interleaved = FaultPolicy(seed=3, probability=0.3)
        trace = []
        for index in range(100):
            # Noise on other streams between every check.
            fault_trace(interleaved, "execute", 2, shard=0)
            fault_trace(interleaved, "executemany", 1, shard=1)
            try:
                interleaved.check("execute", 1)
                trace.append(False)
            except TransientBackendError:
                trace.append(True)
        assert trace == expected

    def test_reset_replays_identically(self):
        policy = FaultPolicy(seed=11, probability=0.25)
        first = fault_trace(policy, "execute", 150)
        policy.reset()
        assert policy.faults_injected == 0
        assert fault_trace(policy, "execute", 150) == first


class TestScriptedFaults:
    def test_fires_exactly_at_index(self):
        policy = FaultPolicy(schedule=[ScriptedFault("execute", 2)])
        assert fault_trace(policy, "execute", 5) == [
            False,
            False,
            True,
            False,
            False,
        ]

    def test_shard_targeting(self):
        policy = FaultPolicy(
            schedule=[ScriptedFault("execute", 0, shard=1)]
        )
        assert fault_trace(policy, "execute", 2, shard=0) == [False, False]
        assert fault_trace(policy, "execute", 2, shard=1) == [True, False]

    def test_kind_picks_the_classified_error(self):
        for kind, error_type in FAULT_KINDS.items():
            policy = FaultPolicy(schedule=[ScriptedFault("commit", 0, kind=kind)])
            with pytest.raises(error_type):
                policy.check("commit")

    def test_scripted_faults_work_outside_enabled_sites(self):
        """A script can hit ``commit`` even when only statement sites are
        probabilistically enabled."""
        policy = FaultPolicy(
            probability=0.0,
            sites=("execute",),
            schedule=[ScriptedFault("commit", 1)],
        )
        assert fault_trace(policy, "commit", 3) == [False, True, False]

    def test_unknown_site_and_kind_rejected(self):
        with pytest.raises(BulkProcessingError):
            ScriptedFault("fetch", 0)
        with pytest.raises(BulkProcessingError):
            ScriptedFault("execute", 0, kind="fatal")
        with pytest.raises(BulkProcessingError):
            FaultPolicy(sites=("teleport",))
        with pytest.raises(BulkProcessingError):
            FaultPolicy(kind="fatal")
        with pytest.raises(BulkProcessingError):
            FaultPolicy(schedule=["not-a-fault"])


class TestCapsAndCounters:
    def test_max_faults_caps_total_injection(self):
        policy = FaultPolicy(seed=5, probability=1.0, max_faults=2)
        trace = fault_trace(policy, "execute", 10)
        assert trace[:2] == [True, True]
        assert not any(trace[2:])
        assert policy.faults_injected == 2

    def test_per_site_probability_override(self):
        policy = FaultPolicy(
            seed=9,
            probability=1.0,
            probabilities={"executemany": 0.0},
            sites=("execute", "executemany"),
        )
        assert fault_trace(policy, "execute", 3) == [True, True, True]
        assert fault_trace(policy, "executemany", 3) == [False, False, False]

    def test_faults_by_site(self):
        policy = FaultPolicy(seed=1, probability=1.0, sites=("execute",))
        fault_trace(policy, "execute", 3)
        fault_trace(policy, "executemany", 3)
        assert policy.faults_by_site() == {"execute": 3}


class TestFromEnv:
    def test_disabled_when_unset_or_empty(self):
        assert FaultPolicy.from_env({}) is None
        assert FaultPolicy.from_env({"REPRO_FAULT_SEED": ""}) is None

    def test_enabled_policy_is_transient_statement_chaos(self):
        policy = FaultPolicy.from_env({"REPRO_FAULT_SEED": "42"})
        assert policy is not None
        assert policy.seed == 42
        assert policy.probability == pytest.approx(0.05)
        assert policy.kind == "transient"
        assert set(policy.sites) == {"execute", "executemany"}

    def test_probability_override(self):
        policy = FaultPolicy.from_env(
            {"REPRO_FAULT_SEED": "1", "REPRO_FAULT_P": "0.5"}
        )
        assert policy.probability == pytest.approx(0.5)

    def test_bad_seed_rejected(self):
        with pytest.raises(BulkProcessingError):
            FaultPolicy.from_env({"REPRO_FAULT_SEED": "not-an-int"})


class TestFaultInjectingBackend:
    def test_transparent_identity(self):
        inner = SqliteMemoryBackend()
        wrapped = FaultInjectingBackend(inner, FaultPolicy())
        assert wrapped.name == inner.name
        assert wrapped.supports_concurrent_replay == inner.supports_concurrent_replay
        assert (
            wrapped.supports_concurrent_statements
            == inner.supports_concurrent_statements
        )
        assert wrapped.render("SELECT ?") == inner.render("SELECT ?")

    def test_sites_fire_through_the_connection_surface(self):
        policy = FaultPolicy(
            schedule=[
                ScriptedFault("connect", 1, kind="unavailable"),
                ScriptedFault("execute", 0),
                ScriptedFault("commit", 0, kind="timeout"),
            ]
        )
        backend = FaultInjectingBackend(SqliteMemoryBackend(), policy)
        connection = backend.connect()  # connect call #0: clean
        cursor = connection.cursor()
        with pytest.raises(TransientBackendError):
            cursor.execute("SELECT 1")
        cursor.execute("SELECT 1")  # call #1: clean, cursor still usable
        assert cursor.fetchone() == (1,)
        with pytest.raises(StatementTimeout):
            connection.commit()
        with pytest.raises(BackendUnavailable):
            backend.connect()  # connect call #1: scripted unavailable
        assert backend.faults_injected == 3

    def test_faults_fire_before_the_statement_applies(self):
        """An injected failure never half-applies: the inner database sees
        nothing from a faulted execute."""
        policy = FaultPolicy(schedule=[ScriptedFault("execute", 1)])
        backend = FaultInjectingBackend(SqliteMemoryBackend(), policy)
        connection = backend.connect()
        cursor = connection.cursor()
        cursor.execute("CREATE TABLE T (A INTEGER)")  # call #0: clean
        with pytest.raises(TransientBackendError):
            cursor.execute("INSERT INTO T VALUES (1)")  # call #1: faulted
        cursor.execute("SELECT COUNT(*) FROM T")
        assert cursor.fetchone() == (0,)

    def test_site_order_is_locked(self):
        assert FAULT_SITES == ("connect", "execute", "executemany", "commit")
