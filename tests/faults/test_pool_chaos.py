"""Chaos tests for connection-per-worker execution: faults through the pool.

The pooled compiled path replaces the one run transaction with one
transaction per region on per-worker WAL connections, so the fault
machinery has new seams: the pooled ``connect`` itself can fault, faults
can land inside a staged region SELECT or its short ``INSERT … SELECT``
apply, and a worker dying mid-run must not leave the committed prefix of
regions visible.  Every scenario runs a genuinely multi-region workload
(disjoint chains, split by an explicit region budget, so several lanes are
really active) and is locked against a fault-free twin through the
byte-identity oracle.
"""

from __future__ import annotations

import pytest

from repro.core.errors import BackendUnavailable
from repro.faults import FaultInjectingBackend, FaultPolicy, RetryPolicy, ScriptedFault
from repro.bulk.backends import SqliteFileBackend
from repro.bulk.compile import RegionLimits, compile_plan
from repro.bulk.executor import BulkResolver
from repro.bulk.planner import plan_resolution
from repro.bulk.store import PossStore
from repro.workloads.bulkload import multi_chain_network

RETRY_FAST = RetryPolicy(max_attempts=8, base_delay=0.0, max_delay=0.0)

CHAINS, DEPTH = 3, 10


def _workload():
    network, roots = multi_chain_network(CHAINS, DEPTH)
    plan = plan_resolution(network, explicit_users=roots)
    limits = RegionLimits(max_copy_edges=DEPTH, max_flood_pairs=DEPTH)
    compiled_plan = compile_plan(plan, limits=limits)
    rows = [(root, f"k{i}", f"v{i}") for root in roots for i in range(2)]
    return network, plan, compiled_plan, rows


def _twin_relation(serialized_relation):
    """The fault-free single-connection reference run."""
    network, plan, compiled_plan, rows = _workload()
    resolver = BulkResolver(
        network, plan=plan, compiled_plan=compiled_plan, scheduler="compiled"
    )
    resolver.load_beliefs(rows)
    resolver.run()
    expected = serialized_relation(resolver.store)
    resolver.store.close()
    return expected


def _pooled_resolver(store):
    network, plan, compiled_plan, rows = _workload()
    resolver = BulkResolver(
        network,
        store=store,
        plan=plan,
        compiled_plan=compiled_plan,
        scheduler="compiled",
        pool_workers=2,
    )
    return resolver, rows


class TestConnectFaultsThroughThePool:
    def test_transient_pooled_connect_retries(
        self, serialized_relation, tmp_path
    ):
        """The first pooled checkout faults at the ``connect`` site; the
        checkout retries under the store's retry policy and the run lands
        byte-identical to the fault-free twin."""
        expected = _twin_relation(serialized_relation)

        # connect #0 is the store's primary connection; #1 is the first
        # worker connection the pool opens.
        backend = FaultInjectingBackend(
            SqliteFileBackend(str(tmp_path / "connect.db")),
            FaultPolicy(
                schedule=[ScriptedFault(site="connect", index=1)],
                sites=(),
            ),
        )
        store = PossStore(backend=backend, retry_policy=RETRY_FAST)
        resolver, rows = _pooled_resolver(store)
        resolver.load_beliefs(rows)
        report = resolver.run()
        assert report.pool_workers == 2
        assert report.faults_injected == 1
        assert report.retries >= 1
        assert serialized_relation(store) == expected
        store.close()

    def test_hard_pooled_connect_failure_aborts_cleanly(self, tmp_path):
        """A non-transient connect fault on a worker connection fails the
        run; rollback-by-run-id leaves exactly the loaded beliefs."""
        backend = FaultInjectingBackend(
            SqliteFileBackend(str(tmp_path / "hard-connect.db")),
            FaultPolicy(
                schedule=[
                    ScriptedFault(site="connect", index=1, kind="unavailable")
                ],
                sites=(),
            ),
        )
        store = PossStore(backend=backend, retry_policy=RETRY_FAST)
        resolver, rows = _pooled_resolver(store)
        resolver.load_beliefs(rows)
        before = sorted(store.possible_table())
        with pytest.raises(BackendUnavailable):
            resolver.run()
        assert sorted(store.possible_table()) == before
        cursor = store._execute("SELECT COUNT(*) FROM POSS_JOURNAL")
        assert cursor.fetchone()[0] == 0
        store.close()


class TestTransientFaultsInsidePooledRegions:
    def test_pooled_regions_retry_transparently(
        self, serialized_relation, tmp_path
    ):
        """Probabilistic transient execute faults land inside staged region
        SELECTs, stage applies and journal writes across every worker
        connection; the per-statement and per-region retry loops absorb all
        of them."""
        expected = _twin_relation(serialized_relation)

        saw_faults = False
        for seed in range(6):
            backend = FaultInjectingBackend(
                SqliteFileBackend(str(tmp_path / f"p{seed}.db")),
                FaultPolicy(seed=seed, probability=0.2, sites=("execute",)),
            )
            store = PossStore(backend=backend, retry_policy=RETRY_FAST)
            resolver, rows = _pooled_resolver(store)
            resolver.load_beliefs(rows)
            report = resolver.run()
            assert serialized_relation(store) == expected, f"seed {seed}"
            assert report.pool_workers == 2
            saw_faults = saw_faults or report.faults_injected > 0
            store.close()
        assert saw_faults  # the sweep actually injected something


class TestWorkerDeathMidRun:
    def test_no_partially_visible_run_wherever_the_worker_dies(
        self, serialized_relation, tmp_path
    ):
        """Sweep a hard (non-retryable) fault across the execute stream of a
        pooled run: whichever region's statement it kills, the failed run
        rolls its committed regions back — the relation afterwards is
        exactly the loaded beliefs, never a prefix of the run."""
        expected = _twin_relation(serialized_relation)

        saw_death = False
        saw_completion = False
        for crash_at in range(0, 40, 2):
            policy = FaultPolicy(
                schedule=[
                    ScriptedFault(
                        site="execute", index=crash_at, kind="unavailable"
                    )
                ],
                sites=(),
            )
            try:
                backend = FaultInjectingBackend(
                    SqliteFileBackend(str(tmp_path / f"death{crash_at}.db")),
                    policy,
                )
                store = PossStore(backend=backend, retry_policy=RETRY_FAST)
                resolver, rows = _pooled_resolver(store)
                resolver.load_beliefs(rows)
            except BackendUnavailable:
                # The fault fired while creating the schema or loading the
                # beliefs — nothing pooled ran; not this scenario's subject.
                continue
            before = sorted(store.possible_table())
            try:
                report = resolver.run()
            except BackendUnavailable:
                saw_death = True
                assert sorted(store.possible_table()) == before, (
                    f"crash at execute #{crash_at} left a partial run visible"
                )
                cursor = store._execute("SELECT COUNT(*) FROM POSS_JOURNAL")
                assert cursor.fetchone()[0] == 0
            else:
                saw_completion = True
                assert report.pool_workers == 2
                # The crash index may fall beyond the run's statement
                # stream; disarm it so it cannot fire inside this
                # verification read.
                policy.schedule = ()
                assert serialized_relation(store) == expected
            store.close()
        assert saw_death  # the sweep really killed workers mid-run
        assert saw_completion  # and also ran off the end of the stream
