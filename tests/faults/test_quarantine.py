"""Shard quarantine and graceful degradation: store, session, engine.

With 2 hash-routed shards, ``k0``..``k3`` route to shard 1 and ``k4``..
``k7`` to shard 0 — the tests below rely on ``k0`` (shard 1) and ``k4``
(shard 0) to address each side.
"""

from __future__ import annotations

import pytest

from repro.core.errors import BulkProcessingError, ShardUnavailable
from repro.core.network import TrustNetwork
from repro.bulk.store import PossStore, ShardedPossStore
from repro.engine import ResolutionEngine
from repro.incremental.deltas import SetBelief
from repro.incremental.session import IncrementalSession

KEYS = ("k0", "k4")  # one key per shard under ShardSpec.hashed(2)


def chain_network() -> TrustNetwork:
    tn = TrustNetwork()
    tn.add_trust("mirror", "source", priority=2)
    tn.add_trust("mirror", "backup", priority=1)
    tn.add_trust("copy", "mirror", priority=1)
    tn.set_explicit_belief("source", "v")
    tn.set_explicit_belief("backup", "w")
    return tn


def loaded_store() -> ShardedPossStore:
    store = ShardedPossStore(2)
    store.insert_explicit_beliefs(
        [("a", key, "v") for key in KEYS] + [("b", key, "w") for key in KEYS]
    )
    return store


class TestStoreQuarantine:
    def test_quarantine_marks_and_heal_clears(self):
        with ShardedPossStore(2) as store:
            assert store.degraded_shards == ()
            store.quarantine(1)
            assert store.is_degraded(1)
            assert not store.is_degraded(0)
            assert store.degraded_shards == (1,)
            store.heal(1)  # the in-memory shard still answers: heal clears
            assert store.degraded_shards == ()

    def test_out_of_range_index_rejected(self):
        with ShardedPossStore(2) as store:
            with pytest.raises(BulkProcessingError):
                store.quarantine(2)
            with pytest.raises(BulkProcessingError):
                store.heal(-1)
            with pytest.raises(BulkProcessingError):
                store.is_degraded(5)

    def test_key_routed_reads_fail_typed(self):
        with loaded_store() as store:
            store.quarantine(1)
            with pytest.raises(ShardUnavailable) as excinfo:
                store.possible_values("a", "k0")
            assert excinfo.value.shard == 1
            assert "k0" in excinfo.value.keys
            # The healthy shard's keys keep answering.
            assert store.possible_values("a", "k4") == frozenset({"v"})

    def test_shard_for_raises_on_degraded(self):
        with loaded_store() as store:
            store.quarantine(1)
            with pytest.raises(ShardUnavailable) as excinfo:
                store.shard_for("k0")
            assert excinfo.value.shard == 1
            assert excinfo.value.keys == ("k0",)
            assert store.shard_for("k4") is store.shards[0]

    def test_whole_relation_reads_skip_degraded(self):
        with loaded_store() as store:
            full = len(store.possible_table())
            store.quarantine(1)
            rows = store.possible_table()
            assert 0 < len(rows) < full
            assert {row.key for row in rows} == {"k4"}
            assert store.keys() == frozenset({"k4"})
            assert store.row_count() == len(rows)

    def test_whole_relation_writes_require_all_shards(self):
        with loaded_store() as store:
            store.quarantine(1)
            with pytest.raises(ShardUnavailable) as excinfo:
                store.copy_from_parent("child", "a")
            assert excinfo.value.shard == 1
            with pytest.raises(ShardUnavailable):
                store.delete_user_rows(["a"])  # keyless fan-out delete

    def test_key_routed_writes_respect_quarantine(self):
        with loaded_store() as store:
            store.quarantine(1)
            # Healthy shard: key-addressed delta statements still land.
            assert store.delete_user_rows(["a"], key="k4") == 1
            assert store.insert_rows([("a", "k4", "z")]) == 1
            # Dead shard's key: typed failure naming shard and key.
            with pytest.raises(ShardUnavailable) as excinfo:
                store.insert_rows([("a", "k0", "z")])
            assert excinfo.value.shard == 1
            assert excinfo.value.keys == ("k0",)

    def test_dead_shard_is_auto_quarantined(self, kill_shard):
        store = loaded_store()
        kill_shard(store, 1, dead_connects=1)
        with pytest.raises(ShardUnavailable) as excinfo:
            store.ensure_available()
        assert excinfo.value.shard == 1
        assert store.degraded_shards == (1,)
        # Faults exhausted: heal() reconnects — to a fresh, empty
        # in-memory database (recovering the content is recover_shard's
        # job, not heal's).
        store.heal(1)
        assert store.degraded_shards == ()
        assert store.shards[1].row_count() == 0
        store.close()

    def test_heal_keeps_still_dead_shard_quarantined(self, kill_shard):
        store = loaded_store()
        kill_shard(store, 1, dead_connects=4)
        store.quarantine(1)
        with pytest.raises(ShardUnavailable):
            store.heal(1)  # reconnect fails: still quarantined
        assert store.degraded_shards == (1,)
        store.close()


class TestSessionDegradedFlush:
    def _twin_sessions(self):
        """A faulted session and its fault-free twin, identically loaded."""
        faulted = IncrementalSession(
            chain_network(), store=ShardedPossStore(2), keys=KEYS
        )
        clean = IncrementalSession(
            chain_network(), store=ShardedPossStore(2), keys=KEYS
        )
        return faulted, clean

    def test_flush_degrades_around_dead_shard(self, kill_shard, serialized_relation):
        faulted, clean = self._twin_sessions()
        deltas = tuple(SetBelief("source", "z", key=key) for key in KEYS)
        kill_shard(faulted.store, 1)
        report = faulted.apply(*deltas)
        assert report.recovered is True
        assert faulted.store.degraded_shards == (1,)
        assert faulted.pending_shards() == (1,)
        # The healthy shard landed its delta; its slice matches the twin's.
        clean.apply(*deltas)
        assert serialized_relation(faulted.store.shards[0]) == serialized_relation(
            clean.store.shards[0]
        )
        # The dead shard's key fails typed, in-memory answers still serve.
        with pytest.raises(ShardUnavailable):
            faulted.store.possible_values("copy", "k0")
        assert faulted.possible_values("copy", "k0") == frozenset({"z"})
        faulted.close()
        clean.close()

    def test_recover_shard_rebuilds_lost_slice(self, kill_shard, serialized_relation):
        faulted, clean = self._twin_sessions()
        # dead_connects=0: the flush attribution only pings (never
        # reconnects), so the first reconnect is recover_shard's heal —
        # which must succeed here, onto a fresh empty database.
        kill_shard(faulted.store, 1, dead_connects=0)
        deltas = tuple(SetBelief("source", "z", key=key) for key in KEYS)
        faulted.apply(*deltas)
        clean.apply(*deltas)
        assert faulted.pending_shards() == (1,)
        # Heal lands on a fresh empty in-memory database: the pending
        # replay is not enough, the verify step detects the lost slice and
        # rebuilds it wholesale from the resolvers.
        slice_rows = faulted.recover_shard(1)
        assert slice_rows > 0
        assert faulted.pending_shards() == ()
        assert faulted.store.degraded_shards == ()
        assert serialized_relation(faulted.store) == serialized_relation(clean.store)
        faulted.close()
        clean.close()

    def test_recover_shard_requires_sharded_store(self):
        session = IncrementalSession(chain_network(), store=PossStore())
        with pytest.raises(BulkProcessingError):
            session.recover_shard(0)
        session.close()


class TestEngineRecover:
    def test_apply_degrades_and_recover_restores(self, kill_shard, serialized_relation):
        deltas = tuple(SetBelief("source", "z", key=key) for key in KEYS)
        clean = ResolutionEngine(chain_network(), shards=2, keys=KEYS)
        clean.materialize()
        clean.apply(*deltas)
        expected = serialized_relation(clean.store)

        engine = ResolutionEngine(chain_network(), shards=2, keys=KEYS)
        engine.materialize()
        kill_shard(engine.store, 1, dead_connects=0)
        report = engine.apply(*deltas)
        assert report.recovered is True
        assert report.degraded_shards == (1,)
        assert engine.degraded_shards == (1,)
        # Degraded service: the healthy shard's key answers, the dead
        # shard's key fails typed.
        assert engine.query("copy", "k4") == frozenset({"z"})
        with pytest.raises(ShardUnavailable):
            engine.store.possible_values("copy", "k0")

        recover = engine.recover_shard(1)
        assert recover.operation == "recover"
        assert recover.recovered is True
        assert recover.degraded_shards == ()
        assert recover.rows_inserted > 0
        assert serialized_relation(engine.store) == expected
        assert engine.query("copy", "k0") == frozenset({"z"})
        engine.close()
        clean.close()

    def test_recover_on_still_dead_shard_raises(self, kill_shard):
        engine = ResolutionEngine(chain_network(), shards=2, keys=KEYS)
        engine.materialize()
        kill_shard(engine.store, 1, dead_connects=4)
        engine.store.quarantine(1)
        with pytest.raises(ShardUnavailable):
            engine.recover_shard(1)
        assert engine.degraded_shards == (1,)
        engine.close()
