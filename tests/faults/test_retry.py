"""Retry/backoff under injected faults: the store's statement funnel."""

from __future__ import annotations

import pytest

from repro.core.errors import (
    BackendError,
    BulkProcessingError,
    StatementTimeout,
    TransientBackendError,
)
from repro.faults import FaultInjectingBackend, FaultPolicy, RetryPolicy, ScriptedFault
from repro.bulk.backends import SqliteMemoryBackend
from repro.bulk.executor import BulkResolver
from repro.bulk.store import PossStore
from repro.workloads.bulkload import BELIEF_USERS, figure19_network, generate_objects


def faulty_store(policy: FaultPolicy, retry: "RetryPolicy | None" = None) -> PossStore:
    backend = FaultInjectingBackend(SqliteMemoryBackend(), policy)
    return PossStore(backend=backend, retry_policy=retry)


#: A fast policy for tests: no real sleeping.
FAST = RetryPolicy(max_attempts=6, base_delay=0.0, max_delay=0.0)


class TestRetryPolicyData:
    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(base_delay=0.01, max_delay=0.04, jitter_seed=1)
        bare = [
            policy.delay(attempt) - RetryPolicy(
                base_delay=0.01, max_delay=0.04, jitter_seed=1
            ).delay(attempt)
            for attempt in (1, 2, 3, 4)
        ]
        # Determinism: the same policy yields the same delay per attempt.
        assert bare == [0.0, 0.0, 0.0, 0.0]
        delays = [policy.delay(attempt) for attempt in (1, 2, 3, 4, 5)]
        # Exponential up to the cap; jitter adds at most base/2.
        assert 0.01 <= delays[0] <= 0.015
        assert 0.02 <= delays[1] <= 0.025
        assert 0.04 <= delays[2] <= 0.045
        assert 0.04 <= delays[4] <= 0.045

    def test_validation(self):
        with pytest.raises(BulkProcessingError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(BulkProcessingError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(BulkProcessingError):
            RetryPolicy(deadline=0.0)
        with pytest.raises(BulkProcessingError):
            RetryPolicy().delay(0)

    def test_named_constructors(self):
        assert RetryPolicy.default().max_attempts == 6
        assert RetryPolicy.none().max_attempts == 1


class TestStatementRetries:
    def test_transient_faults_are_absorbed(self):
        # Schema setup consumes execute calls #0-#4; the copy statement is
        # call #5 and its two retries are #6 and #7.
        policy = FaultPolicy(
            schedule=[
                ScriptedFault("execute", 5),
                ScriptedFault("execute", 6),
            ]
        )
        store = faulty_store(policy, FAST)
        store.insert_explicit_beliefs([("a", "k0", "v")])
        store.copy_from_parent("b", "a")
        assert store.possible_values("b", "k0") == frozenset({"v"})
        assert store.retries == 2
        assert store.faults_injected == 2
        assert store.timed_out_statements == 0

    def test_exhausted_retries_raise_classified(self):
        store = faulty_store(FaultPolicy(), FAST)
        store.insert_explicit_beliefs([("a", "k0", "v")])
        # From now on every execute faults: retries run out.
        store._backend.policy.probability = 1.0
        store._backend.policy.sites = ("execute",)
        store._backend.policy.seed = 0
        with pytest.raises(TransientBackendError):
            store.copy_from_parent("b", "a")
        assert store.retries == FAST.max_attempts - 1

    def test_no_retry_policy_fails_fast(self):
        policy = FaultPolicy(schedule=[ScriptedFault("execute", 5)])
        store = faulty_store(policy, RetryPolicy.none())
        store.insert_explicit_beliefs([("a", "k0", "v")])
        with pytest.raises(TransientBackendError):
            store.copy_from_parent("b", "a")
        assert store.retries == 0

    def test_deadline_raises_statement_timeout(self):
        policy = FaultPolicy(probability=1.0, sites=("execute",))
        store = faulty_store(
            FaultPolicy(),  # clean while the schema is created
        )
        store.retry_policy = RetryPolicy(
            max_attempts=10, base_delay=0.05, max_delay=0.05, deadline=0.01
        )
        store._backend = FaultInjectingBackend(store._backend, policy)
        store._connection = store._backend.connect()
        with pytest.raises(StatementTimeout):
            store.row_count()
        assert store.timed_out_statements == 1

    def test_persistent_errors_do_not_retry(self):
        with PossStore() as store:
            retries_before = store.retries
            with pytest.raises(BackendError):
                store._execute("SELECT * FROM NO_SUCH_TABLE")
            assert store.retries == retries_before

    def test_ping_survives_transient_faults(self):
        """A transient fault during the health probe means the connection
        answered — ping must not report it dead (a false negative would
        trigger a reconnect that wipes an in-memory database)."""
        store = faulty_store(FaultPolicy())
        store._backend.policy.probability = 1.0
        store._backend.policy.sites = ("execute",)
        assert store.ping() is True


class TestRunReportCounters:
    def test_bulk_run_report_carries_fault_fields(self, serialized_relation):
        network = figure19_network()
        objects = generate_objects(8, seed=2)

        clean = BulkResolver(network, explicit_users=BELIEF_USERS)
        clean.load_beliefs(objects)
        clean.run()
        expected = serialized_relation(clean.store)
        clean.store.close()

        policy = FaultPolicy(seed=13, probability=0.05, sites=("execute",))
        store = faulty_store(policy, FAST)
        resolver = BulkResolver(
            network, store=store, explicit_users=BELIEF_USERS
        )
        resolver.load_beliefs(objects)
        report = resolver.run()
        assert report.faults_injected > 0
        assert report.retries == report.faults_injected
        assert report.timed_out_statements == 0
        # Byte-identical to the fault-free twin: retries are transparent.
        assert serialized_relation(store) == expected
        store.close()

    def test_fault_free_run_reports_zero(self):
        resolver = BulkResolver(figure19_network(), explicit_users=BELIEF_USERS)
        resolver.load_beliefs(generate_objects(3, seed=1))
        report = resolver.run()
        assert report.retries == 0
        assert report.faults_injected == 0
        assert report.timed_out_statements == 0
        assert report.checkpointed is False
        assert report.nodes_skipped == 0
        resolver.store.close()
