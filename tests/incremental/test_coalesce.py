"""Tests for delta coalescing and batched (single-recompute) application.

Acceptance property: coalesced batches applied through the batch path must
leave both the in-memory state and the ``POSS`` relation byte-identical to
op-at-a-time application of the original stream, on 100+ random networks ×
20-op streams — while performing fewer regional recomputes than ops when
the stream overlaps itself.
"""

from __future__ import annotations

import random

import pytest

from repro.bulk.store import PossStore, ShardedPossStore
from repro.core.errors import NetworkError
from repro.core.resolution import resolve
from repro.incremental.coalesce import coalesce
from repro.incremental.deltas import (
    AddTrust,
    RemoveBelief,
    RemoveTrust,
    RemoveUser,
    SetBelief,
    SetPriority,
)
from repro.incremental.resolver import DeltaResolver
from repro.incremental.session import IncrementalSession
from repro.incremental.skeptic import SkepticDeltaResolver
from repro.workloads.updates import generate_update_stream
from repro.workloads.oscillators import clusters_for_size, oscillator_network


def _random_network(rng, max_users=8):
    from repro.core.network import TrustNetwork

    n = rng.randint(4, max_users)
    users = [f"u{i}" for i in range(n)]
    tn = TrustNetwork()
    for user in users:
        tn.add_user(user)
    n_explicit = rng.randint(1, 2)
    for child in users[n_explicit:]:
        parents = rng.sample([u for u in users if u != child], rng.randint(1, 2))
        priorities = rng.sample([1, 2], len(parents))
        for parent, priority in zip(parents, priorities):
            tn.add_trust(child, parent, priority=priority)
    for user in users[:n_explicit]:
        tn.set_explicit_belief(user, rng.choice(["v1", "v2"]))
    return tn


class TestCoalesceRules:
    def test_belief_slot_last_write_wins(self):
        stream = [
            SetBelief("a", "v1"),
            SetBelief("b", "w"),
            SetBelief("a", "v2"),
            RemoveBelief("a"),
        ]
        out = coalesce(stream)
        assert out == [RemoveBelief("a"), SetBelief("b", "w")]

    def test_belief_slots_are_per_key(self):
        stream = [
            SetBelief("a", "v1", key="k0"),
            SetBelief("a", "v2", key="k1"),
            SetBelief("a", "v3", key="k0"),
        ]
        out = coalesce(stream)
        assert out == [SetBelief("a", "v3", key="k0"), SetBelief("a", "v2", key="k1")]

    def test_priority_runs_merge(self):
        stream = [
            SetPriority("c", "p", 1),
            SetBelief("x", "v"),
            SetPriority("c", "p", 5),
        ]
        out = coalesce(stream)
        assert out == [SetPriority("c", "p", 5), SetBelief("x", "v")]

    def test_structural_barrier_blocks_belief_merge(self):
        stream = [
            SetBelief("a", "v1"),
            RemoveUser("a"),
            SetBelief("a", "v2"),
        ]
        assert coalesce(stream) == stream

    def test_edge_mutation_barriers_priority_merge(self):
        stream = [
            SetPriority("c", "p", 1),
            RemoveTrust("c", "p"),
            AddTrust("c", "p", 2),
            SetPriority("c", "p", 3),
        ]
        assert coalesce(stream) == stream

    def test_trust_deltas_pass_through(self):
        stream = [AddTrust("c", "p", 1), RemoveTrust("c", "p")]
        assert coalesce(stream) == stream


class TestCoalescedStreamEquivalence:
    """coalesce(stream) must be observationally equal to the stream."""

    NETWORKS = 110
    OPS = 20

    def test_coalesced_streams_apply_identically(self):
        rng = random.Random(31415)
        merged_something = 0
        for trial in range(self.NETWORKS):
            network = _random_network(rng)
            stream = list(
                generate_update_stream(
                    network.copy(), n_ops=self.OPS, seed=trial
                )
            )
            # Bias the stream toward overlap: re-target users that are
            # still valid belief roots once the stream has played out.
            probe = DeltaResolver(network.copy())
            for delta in stream:
                probe.apply(delta)
            believers = sorted(
                (
                    user
                    for user in probe.beliefs
                    if user in probe.network and not probe.network.incoming(user)
                ),
                key=str,
            )
            if believers:
                stream.extend(
                    SetBelief(rng.choice(believers), f"late-{trial}-{i}")
                    for i in range(3)
                )
            reference = DeltaResolver(network.copy())
            for delta in stream:
                reference.apply(delta)
            condensed = coalesce(stream)
            if len(condensed) < len(stream):
                merged_something += 1
            subject = DeltaResolver(network.copy())
            for delta in condensed:
                subject.apply(delta)
            assert subject.possible == reference.possible, f"trial {trial}"
        assert merged_something > self.NETWORKS // 4


class TestBatchApply:
    """apply_batch: one regional recompute, identical results."""

    NETWORKS = 110
    OPS = 20

    def test_batch_apply_matches_op_at_a_time_and_full_resolution(self):
        rng = random.Random(2718)
        for trial in range(self.NETWORKS):
            network = _random_network(rng)
            stream = list(
                generate_update_stream(network.copy(), n_ops=self.OPS, seed=trial)
            )
            batch_resolver = DeltaResolver(network.copy())
            log = batch_resolver.apply_batch(stream)
            assert log.delta == tuple(stream)
            reference = DeltaResolver(network.copy())
            for delta in stream:
                reference.apply(delta)
            assert batch_resolver.possible == reference.possible, f"trial {trial}"
            # And both equal a from-scratch resolution of the mutated network.
            assert (
                batch_resolver.possible
                == resolve(batch_resolver.network).possible
            ), f"trial {trial}"

    def test_session_batch_is_byte_identical_with_fewer_recomputes(self):
        """The acceptance claim: relations byte-identical to op-at-a-time,
        with fewer regional recomputes than ops on overlapping streams."""
        rng = random.Random(16180)
        fewer = 0
        for trial in range(40):
            network = _random_network(rng)
            stream = list(
                generate_update_stream(network.copy(), n_ops=self.OPS, seed=trial)
            )
            reference = IncrementalSession(network.copy(), store=PossStore())
            for delta in stream:
                reference.apply(delta)
            batched = IncrementalSession(network.copy(), store=PossStore())
            report = batched.apply_batch(*stream)
            assert sorted(batched.store.possible_table()) == sorted(
                reference.store.possible_table()
            ), f"trial {trial}"
            assert report.recomputes == len(batched.keys)
            assert report.coalesced_from == len(stream)
            if report.recomputes < len(stream):
                fewer += 1
            reference.close()
            batched.close()
        assert fewer == 40  # one recompute per key always beats 20 ops

    def test_multi_key_session_batch_routes_by_key(self):
        from repro.core.network import TrustNetwork

        tn = TrustNetwork()
        tn.add_trust("mirror", "source", priority=1)
        tn.set_explicit_belief("source", "v")
        session = IncrementalSession(
            tn, store=ShardedPossStore(2), keys=("k0", "k1")
        )
        report = session.apply_batch(
            SetBelief("source", "a", key="k0"),
            SetBelief("source", "b", key="k1"),
            SetBelief("source", "a2", key="k0"),
            AddTrust("tail", "mirror", 1),
        )
        assert report.coalesced_from == 4
        assert report.deltas == 3  # the two k0 writes merged
        assert session.store.possible_values("mirror", "k0") == frozenset({"a2"})
        assert session.store.possible_values("mirror", "k1") == frozenset({"b"})
        assert session.store.possible_values("tail", "k0") == frozenset({"a2"})
        assert session.store.possible_values("tail", "k1") == frozenset({"b"})
        # In-memory and relation agree per key.
        assert session.possible_values("tail", "k0") == frozenset({"a2"})
        assert session.possible_values("tail", "k1") == frozenset({"b"})
        session.close()

    def test_batch_rejection_resyncs_the_store(self):
        from repro.core.network import TrustNetwork

        tn = TrustNetwork()
        tn.add_trust("mirror", "source", priority=1)
        tn.set_explicit_belief("source", "v")
        session = IncrementalSession(tn, store=PossStore())
        with pytest.raises(NetworkError):
            session.apply_batch(
                SetBelief("source", "w"),
                # Rejected mid-batch: mirror has a parent, so a belief on
                # it is illegal — but only execution-time validation of the
                # belief delta sees that.
                SetBelief("mirror", "nope"),
            )
        # The store matches the maintained state (the first delta landed).
        assert session.possible_values("mirror") == frozenset({"w"})
        assert session.store.possible_values("mirror", "k0") == frozenset({"w"})
        session.close()

    def test_empty_batch_rejected(self):
        from repro.core.network import TrustNetwork
        from repro.core.errors import BulkProcessingError

        tn = TrustNetwork()
        tn.set_explicit_belief("source", "v")
        session = IncrementalSession(tn, store=PossStore())
        with pytest.raises(BulkProcessingError):
            session.apply_batch()
        session.close()

    def test_overlapping_dirty_regions_merge(self):
        """A batch of updates inside one cluster recomputes the region once
        (dirty_region counts the merged region, not per-op copies)."""
        network = oscillator_network(clusters_for_size(400))
        resolver = DeltaResolver(network)
        per_op_regions = []
        probe = DeltaResolver(network.copy())
        for i in range(5):
            per_op_regions.append(
                probe.apply(SetBelief("c0.x3", f"v{i}")).dirty_region
            )
        log = resolver.apply_batch(
            [SetBelief("c0.x3", f"v{i}") for i in range(5)]
        )
        assert log.dirty_region == per_op_regions[0]  # one region, not five
        assert resolver.possible == probe.possible

    def test_skeptic_batch_matches_op_at_a_time(self):
        rng = random.Random(99)
        from repro.core.skeptic import resolve_skeptic

        for trial in range(30):
            network = _random_network(rng)
            stream = list(
                generate_update_stream(
                    network.copy(),
                    n_ops=10,
                    seed=trial,
                    distinct_priorities=True,
                )
            )
            reference = SkepticDeltaResolver(network.copy())
            for delta in stream:
                reference.apply(delta)
            batched = SkepticDeltaResolver(network.copy())
            batched.apply_batch(stream)
            assert batched.representations == reference.representations, (
                f"trial {trial}"
            )
            assert (
                batched.representations
                == resolve_skeptic(batched.network).representations
            ), f"trial {trial}"
