"""Unit tests for the delta vocabulary and the row-level log."""

from __future__ import annotations

from repro.incremental.deltas import (
    AddTrust,
    DeltaLog,
    RemoveBelief,
    RemoveTrust,
    RemoveUser,
    RowChange,
    SetBelief,
    SetPriority,
    is_structural,
)


class TestDeltaKinds:
    def test_structural_classification(self):
        assert is_structural(AddTrust("c", "p", 1))
        assert is_structural(RemoveTrust("c", "p"))
        assert is_structural(SetPriority("c", "p", 2))
        assert is_structural(RemoveUser("u"))
        assert not is_structural(SetBelief("u", "v"))
        assert not is_structural(RemoveBelief("u"))

    def test_belief_deltas_carry_an_optional_key(self):
        assert SetBelief("u", "v").key is None
        assert SetBelief("u", "v", key="k3").key == "k3"
        assert RemoveBelief("u", key="k1").key == "k1"

    def test_deltas_are_hashable_and_comparable(self):
        assert SetBelief("u", "v") == SetBelief("u", "v")
        assert len({AddTrust("c", "p", 1), AddTrust("c", "p", 1)}) == 1


class TestDeltaLog:
    def _log(self):
        return DeltaLog(
            delta=SetBelief("a", "v2"),
            changes=(
                RowChange("a", frozenset({"v"}), frozenset({"v2"})),
                RowChange("b", frozenset(), frozenset({"v2", "w"})),
                RowChange("gone", frozenset({"x"}), frozenset(), removed=True),
            ),
            touched=("a",),
            dirty_region=5,
            recomputed=3,
            pruned=2,
        )

    def test_changed_users_in_order(self):
        assert self._log().changed_users() == ("a", "b", "gone")

    def test_delete_users_skips_previously_empty_rows(self):
        # "b" had no rows, so no DELETE is needed for it; the removed user
        # is always deleted.
        assert self._log().delete_users() == ["a", "gone"]

    def test_insert_rows_expand_sorted_values_per_user(self):
        rows = self._log().insert_rows("k0")
        assert rows == [
            ("a", "k0", "v2"),
            ("b", "k0", "v2"),
            ("b", "k0", "w"),
        ]

    def test_empty_log(self):
        log = DeltaLog(delta=RemoveBelief("u"), changes=(), touched=())
        assert log.is_empty
        assert log.delete_users() == []
        assert log.insert_rows("k") == []
        assert not self._log().is_empty

    def test_cost_counters(self):
        log = self._log()
        assert (log.dirty_region, log.recomputed, log.pruned) == (5, 3, 2)
