"""The incremental engine's correctness contract, property-tested.

ISSUE 4 locks the tentpole with: *every update stream ends byte-identical
(in-memory results and POSS relation) to from-scratch resolution*.  The
tests here replay random 20-op update streams over random binary networks
(≥200 of them) through the incremental engine and compare against a full
re-resolution — after every single op for the in-memory map, and at stream
end for the relational state.
"""

from __future__ import annotations

import pytest

from repro.bulk.store import PossStore
from repro.core.network import TrustNetwork
from repro.core.resolution import resolve
from repro.incremental.resolver import DeltaResolver
from repro.incremental.session import IncrementalSession
from repro.workloads.updates import generate_update_stream
from tests.conftest import random_binary_network

#: ISSUE 4 demands >= 200 random networks x random 20-op update streams.
N_NETWORKS = 220
N_OPS = 20


def serialized_possible(possible) -> bytes:
    """Canonical byte serialization of a possible-value map."""
    return "\n".join(
        f"{user}|{','.join(sorted(map(str, values)))}"
        for user, values in sorted(
            ((str(user), values) for user, values in possible.items())
        )
    ).encode()


@pytest.mark.parametrize("seed", range(N_NETWORKS))
def test_stream_matches_full_resolution_after_every_op(seed):
    network = random_binary_network(seed, n_nodes=8, n_values=3)
    stream = generate_update_stream(network, n_ops=N_OPS, seed=seed * 31 + 7)
    resolver = DeltaResolver(network)
    for delta in stream:
        resolver.apply(delta)
        oracle = resolve(network).possible
        assert serialized_possible(resolver.possible) == serialized_possible(
            oracle
        ), (seed, delta)


@pytest.mark.parametrize("seed", range(60))
def test_stream_leaves_poss_relation_byte_identical(seed):
    """Store-level lock: the session's delta-applied relation equals a fresh
    load of the from-scratch resolution after a whole update stream."""
    network = random_binary_network(seed + 1000, n_nodes=8, n_values=3)
    stream = generate_update_stream(network, n_ops=N_OPS, seed=seed * 17 + 3)
    session = IncrementalSession(network.copy(), store=PossStore())
    for delta in stream:
        session.apply(delta)

    oracle_network = TrustNetwork(
        users=session.network.users,
        mappings=session.network.mappings,
        explicit_beliefs=dict(session.resolver().beliefs),
    )
    oracle = resolve(oracle_network).possible
    fresh = PossStore()
    fresh.insert_rows(
        (user, "k0", value) for user, values in oracle.items() for value in values
    )

    def serialize(store):
        return "\n".join(
            f"{row.user}|{row.key}|{row.value}"
            for row in sorted(store.possible_table())
        ).encode()

    assert serialize(session.store) == serialize(fresh), seed
    session.close()
    fresh.close()


def test_batched_apply_matches_one_by_one():
    """Applying a stream in one apply() batch nets out to the same state."""
    network = random_binary_network(5, n_nodes=8, n_values=3)
    stream = generate_update_stream(network, n_ops=10, seed=42)

    one_by_one = IncrementalSession(network.copy(), store=PossStore())
    for delta in stream:
        one_by_one.apply(delta)
    batched = IncrementalSession(network.copy(), store=PossStore())
    batched.apply(*stream)

    assert sorted(one_by_one.store.possible_table()) == sorted(
        batched.store.possible_table()
    )
    assert one_by_one.resolver().possible == batched.resolver().possible
    one_by_one.close()
    batched.close()
