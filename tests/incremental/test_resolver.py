"""Unit tests for the Algorithm-1 delta resolver (dirty-region recompute)."""

from __future__ import annotations

import gc

import pytest

from repro.core.errors import NetworkError
from repro.core.network import TrustNetwork
from repro.core.resolution import resolve
from repro.incremental.deltas import (
    AddTrust,
    RemoveBelief,
    RemoveTrust,
    RemoveUser,
    SetBelief,
    SetPriority,
)
from repro.incremental.resolver import DeltaResolver
from repro.workloads.oscillators import oscillator_network


def assert_matches_full(resolver: DeltaResolver) -> None:
    """The maintained map must equal a from-scratch resolution."""
    assert resolver.possible == resolve(resolver.network).possible


@pytest.fixture
def oscillator(oscillator_network):
    """The Figure 4b oscillator (two stable solutions) — suite-wide fixture."""
    return oscillator_network


class TestBeliefDeltas:
    def test_set_belief_propagates_downstream(self, oscillator):
        resolver = DeltaResolver(oscillator)
        assert resolver.possible["x1"] == frozenset({"v", "w"})
        log = resolver.apply(SetBelief("x4", "v"))
        # Both sources now agree, so the cycle collapses to one value.
        assert resolver.possible["x1"] == frozenset({"v"})
        assert resolver.possible["x2"] == frozenset({"v"})
        assert {change.user for change in log.changes} == {"x1", "x2", "x4"}
        assert_matches_full(resolver)

    def test_set_belief_same_value_changes_nothing(self, oscillator):
        resolver = DeltaResolver(oscillator)
        log = resolver.apply(SetBelief("x3", "v"))
        assert log.is_empty
        assert log.dirty_region >= 1  # the touched user is always recomputed
        assert_matches_full(resolver)

    def test_set_belief_on_new_user_extends_the_network(self, oscillator):
        resolver = DeltaResolver(oscillator)
        resolver.apply(SetBelief("x9", "q"))
        assert resolver.possible["x9"] == frozenset({"q"})
        assert_matches_full(resolver)

    def test_set_belief_on_non_root_is_rejected(self, oscillator):
        resolver = DeltaResolver(oscillator)
        with pytest.raises(NetworkError):
            resolver.apply(SetBelief("x1", "v"))

    def test_remove_belief_makes_descendants_undefined(self, oscillator):
        resolver = DeltaResolver(oscillator)
        resolver.apply(RemoveBelief("x4"))
        # x2 keeps only the x1-side value; the x4 source is gone.
        assert resolver.possible["x4"] == frozenset()
        assert_matches_full(resolver)

    def test_remove_absent_belief_is_a_noop(self, oscillator):
        resolver = DeltaResolver(oscillator)
        log = resolver.apply(RemoveBelief("x1"))
        assert log.is_empty and log.dirty_region == 0


class TestStructuralDeltas:
    def test_add_trust_reaches_new_child(self, oscillator):
        resolver = DeltaResolver(oscillator)
        resolver.apply(AddTrust("x5", "x1", 10))
        assert resolver.possible["x5"] == frozenset({"v", "w"})
        assert_matches_full(resolver)

    def test_add_trust_validates_binarity(self, oscillator):
        resolver = DeltaResolver(oscillator)
        with pytest.raises(NetworkError):
            resolver.apply(AddTrust("x1", "x4", 10))  # third parent
        with pytest.raises(NetworkError):
            resolver.apply(AddTrust("x3", "x1", 10))  # belief holder
        with pytest.raises(NetworkError):
            resolver.apply(AddTrust("x7", "x7", 1))  # self-trust

    def test_remove_trust_and_priority_change(self, oscillator):
        resolver = DeltaResolver(oscillator)
        # Dropping the preferred edge x2 -> x1 leaves only x3's value.
        resolver.apply(RemoveTrust("x1", "x2"))
        assert resolver.possible["x1"] == frozenset({"v"})
        assert_matches_full(resolver)
        # Re-adding with a *lower* priority than x3 flips the preference.
        resolver.apply(AddTrust("x1", "x2", 10))
        assert_matches_full(resolver)
        resolver.apply(SetPriority("x1", "x2", 100))
        assert_matches_full(resolver)
        assert resolver.possible["x1"] == frozenset({"v", "w"})

    def test_remove_user_drops_its_rows_and_updates_children(self, oscillator):
        resolver = DeltaResolver(oscillator)
        log = resolver.apply(RemoveUser("x4"))
        assert "x4" not in resolver.possible
        removed = [change for change in log.changes if change.removed]
        assert [change.user for change in removed] == ["x4"]
        assert_matches_full(resolver)

    def test_structural_delta_on_missing_edge_is_rejected(self, oscillator):
        resolver = DeltaResolver(oscillator)
        with pytest.raises(NetworkError):
            resolver.apply(RemoveTrust("x1", "x4"))
        with pytest.raises(NetworkError):
            resolver.apply(SetPriority("x9", "x1", 3))
        with pytest.raises(NetworkError):
            resolver.apply(RemoveUser("nope"))


class TestPruning:
    def test_disconnected_clusters_are_never_visited(self):
        network = oscillator_network(50)
        resolver = DeltaResolver(network)
        log = resolver.apply(SetBelief("c0.x3", "fresh"))
        # The dirty region is one cluster's reachable half, not the network.
        assert log.dirty_region == 3
        assert log.recomputed <= 3
        assert_matches_full(resolver)

    def test_equal_value_recompute_prunes_descendants(self):
        # chain: a -> b -> c -> d; flipping a's belief back and forth.
        tn = TrustNetwork()
        tn.add_trust("b", "a", priority=1)
        tn.add_trust("c", "b", priority=1)
        tn.add_trust("d", "c", priority=1)
        tn.set_explicit_belief("a", "v")
        resolver = DeltaResolver(tn)
        log = resolver.apply(SetBelief("a", "v"))
        # a is recomputed (touched), but its value is unchanged, so the
        # three downstream users are pruned without recomputation.
        assert log.dirty_region == 4
        assert log.recomputed == 1
        assert log.pruned == 3
        assert log.is_empty

    def test_partial_pruning_stops_at_stable_values(self):
        # two sources merging: flipping the non-preferred source only
        # recomputes until values stabilize.
        tn = TrustNetwork()
        tn.add_trust("m", "hi", priority=2)
        tn.add_trust("m", "lo", priority=1)
        tn.add_trust("tail", "m", priority=1)
        tn.set_explicit_belief("hi", "v")
        tn.set_explicit_belief("lo", "w")
        resolver = DeltaResolver(tn)
        log = resolver.apply(SetBelief("lo", "zzz"))
        # m copies from the preferred parent "hi", so m (and tail) keep
        # their values: only lo and m are recomputed, tail is pruned.
        assert resolver.possible["m"] == frozenset({"v"})
        assert log.recomputed == 2
        assert log.pruned == 1
        assert_matches_full(resolver)


class TestResolverState:
    def test_resolution_snapshot(self, oscillator):
        resolver = DeltaResolver(oscillator)
        resolver.apply(SetBelief("x4", "v"))
        snapshot = resolver.resolution()
        assert snapshot.possible == resolver.possible
        assert snapshot.certain_value("x1") == "v"
        assert snapshot.explicit_users == frozenset({"x3", "x4"})

    def test_belief_override_detaches_from_network(self, oscillator):
        resolver = DeltaResolver(oscillator, beliefs={"x3": "a", "x4": "b"})
        assert resolver.possible["x1"] == frozenset({"a", "b"})
        resolver.apply(SetBelief("x3", "zz"))
        # The network's own beliefs are untouched in override mode.
        assert oscillator.explicit_belief("x3").positive_value == "v"
        assert resolver.possible["x1"] == frozenset({"zz", "b"})

    def test_belief_override_unknown_user_rejected(self, oscillator):
        with pytest.raises(NetworkError):
            DeltaResolver(oscillator, beliefs={"ghost": "v"})

    def test_non_binary_network_rejected(self):
        tn = TrustNetwork(mappings=[("a", 1, "x"), ("b", 2, "x"), ("c", 3, "x")])
        with pytest.raises(NetworkError):
            DeltaResolver(tn)

    def test_gc_is_restored_after_every_apply(self, oscillator):
        resolver = DeltaResolver(oscillator)
        assert gc.isenabled()
        resolver.apply(SetBelief("x4", "v"))
        assert gc.isenabled()
