"""IncrementalSession: delta DELETE/INSERT application to the POSS store."""

from __future__ import annotations

import gc

import pytest

from repro.bulk.backends import ShardSpec
from repro.bulk.store import PossStore, ShardedPossStore
from repro.core.errors import BulkProcessingError, NetworkError
from repro.incremental.deltas import AddTrust, RemoveUser, SetBelief
from repro.incremental.session import IncrementalSession


@pytest.fixture
def network(oscillator_network):
    """The Figure 4b oscillator from the suite-wide fixture."""
    return oscillator_network


def serialize(store) -> bytes:
    return "\n".join(
        f"{row.user}|{row.key}|{row.value}" for row in sorted(store.possible_table())
    ).encode()


class TestLoadingAndViews:
    def test_autoload_populates_the_store(self, network):
        session = IncrementalSession(network, store=PossStore())
        assert session.store.possible_values("x1", "k0") == frozenset({"v", "w"})
        assert session.possible_values("x1") == frozenset({"v", "w"})
        session.close()

    def test_multi_key_sessions_share_structure(self, network):
        session = IncrementalSession(
            network,
            store=PossStore(),
            keys=("k0", "k1"),
            beliefs_by_key={"k1": {"x3": "a", "x4": "b"}},
        )
        assert session.store.possible_values("x1", "k0") == frozenset({"v", "w"})
        assert session.store.possible_values("x1", "k1") == frozenset({"a", "b"})
        session.close()

    def test_unknown_key_is_rejected(self, network):
        session = IncrementalSession(network, store=PossStore())
        with pytest.raises(BulkProcessingError):
            session.resolver("k9")
        with pytest.raises(BulkProcessingError):
            session.apply(SetBelief("x3", "z", key="k9"))
        session.close()

    def test_session_needs_keys(self, network):
        with pytest.raises(BulkProcessingError):
            IncrementalSession(network, keys=())

    def test_single_key_session_keeps_the_network_authoritative(self, network):
        """With one key and no overrides, belief deltas write back to the
        network, so resolve(session.network) equals the maintained state."""
        from repro.core.resolution import resolve

        session = IncrementalSession(network, store=PossStore())
        session.apply(SetBelief("x4", "v"))
        assert network.explicit_belief("x4").positive_value == "v"
        assert session.resolver().possible == resolve(network).possible
        session.close()


class TestDeltaApplication:
    def test_apply_moves_only_changed_rows(self, network):
        session = IncrementalSession(network, store=PossStore())
        rows_before = session.store.row_count()
        report = session.apply(SetBelief("x4", "v"))
        # x4 flips, the x1/x2 cycle collapses; x3 is untouched.
        assert report.users_changed == 3
        assert report.rows_deleted == 5  # x4 (1 row) + x1, x2 (2 rows each)
        assert report.rows_inserted == 3
        assert report.statements == 2  # one DELETE batch + one INSERT batch
        assert report.transactions == 1
        assert session.store.row_count() == rows_before - 2
        assert session.store.possible_values("x1", "k0") == frozenset({"v"})
        session.close()

    def test_noop_delta_touches_no_store(self, network):
        session = IncrementalSession(network, store=PossStore())
        report = session.apply(SetBelief("x3", "v"))
        assert report.users_changed == 0
        assert report.statements == 0
        assert report.transactions == 0
        session.close()

    def test_structural_delta_fans_out_to_every_key(self, network):
        session = IncrementalSession(network, store=PossStore(), keys=("k0", "k1"))
        report = session.apply(AddTrust("x5", "x1", 9))
        assert report.keys == 2
        for key in ("k0", "k1"):
            assert session.store.possible_values("x5", key) == frozenset({"v", "w"})
        assert len(network.mappings) == 5  # mutated once, not per key
        session.close()

    def test_remove_user_deletes_rows_everywhere(self, network):
        session = IncrementalSession(network, store=PossStore(), keys=("k0", "k1"))
        session.apply(RemoveUser("x4"))
        for key in ("k0", "k1"):
            assert session.store.possible_values("x4", key) == frozenset()
        assert "x4" not in session.resolver("k1").possible
        session.close()

    def test_failed_validation_leaves_relation_untouched(self, network):
        session = IncrementalSession(network, store=PossStore())
        before = serialize(session.store)
        with pytest.raises(NetworkError):
            session.apply(AddTrust("x1", "x4", 99))  # third parent of x1
        assert serialize(session.store) == before
        session.close()

    def test_mid_transaction_failure_rolls_back(self, network, monkeypatch):
        session = IncrementalSession(network, store=PossStore())
        before = serialize(session.store)
        original = PossStore.insert_rows

        def exploding_insert(self, rows):
            raise RuntimeError("backend lost")

        monkeypatch.setattr(PossStore, "insert_rows", exploding_insert)
        with pytest.raises(RuntimeError):
            session.apply(SetBelief("x4", "v"))
        monkeypatch.setattr(PossStore, "insert_rows", original)
        # The DELETE that ran before the failing INSERT was rolled back.
        assert serialize(session.store) == before
        session.close()

    def test_rejected_delta_mid_batch_flushes_the_applied_prefix(self, network):
        """A failure on delta N must not orphan deltas 1..N-1: their changes
        are flushed so the relation keeps matching the in-memory state."""
        session = IncrementalSession(network, store=PossStore())
        with pytest.raises(BulkProcessingError):
            session.apply(
                SetBelief("x4", "v"),  # applied in memory
                SetBelief("x4", "q", key="nope"),  # unknown key: rejected
            )
        # In-memory state carries the first delta ...
        assert session.possible_values("x1") == frozenset({"v"})
        # ... and so does the relation (no permanent desync).
        fresh = PossStore()
        fresh.insert_rows(session.rows())
        assert serialize(session.store) == serialize(fresh)
        fresh.close()
        session.close()

    def test_resync_reconciles_after_a_store_failure(self, network, monkeypatch):
        session = IncrementalSession(network, store=PossStore())
        original = PossStore.insert_rows
        monkeypatch.setattr(
            PossStore,
            "insert_rows",
            lambda self, rows: (_ for _ in ()).throw(RuntimeError("backend lost")),
        )
        with pytest.raises(RuntimeError):
            session.apply(SetBelief("x4", "v"))
        monkeypatch.setattr(PossStore, "insert_rows", original)
        # The rolled-back store is behind the resolvers until resync().
        session.resync()
        fresh = PossStore()
        fresh.insert_rows(session.rows())
        assert serialize(session.store) == serialize(fresh)
        fresh.close()
        session.close()

    def test_large_change_sets_are_chunked(self, network):
        """Delta deletes exceeding an engine's bind-variable limit chunk."""
        store = PossStore()
        store.insert_rows([(f"u{i}", "k0", "v") for i in range(1200)])
        assert store.delete_user_rows([f"u{i}" for i in range(1200)]) == 1200
        assert store.delta_statements == 1 + 3  # 1 insert + 3 delete chunks
        assert store.row_count() == 0
        store.close()

    def test_empty_apply_is_rejected(self, network):
        session = IncrementalSession(network, store=PossStore())
        with pytest.raises(BulkProcessingError):
            session.apply()
        session.close()


class TestShardedApplication:
    def test_delta_apply_routes_to_owning_shards(self, network):
        store = ShardedPossStore(ShardSpec.hashed(3))
        session = IncrementalSession(network, store=store, keys=("k0", "k1", "k2"))
        report = session.apply(SetBelief("x4", "v", key="k1"))
        assert report.transactions == 3  # one per shard, all-or-nothing
        assert store.possible_values("x1", "k1") == frozenset({"v"})
        assert store.possible_values("x1", "k0") == frozenset({"v", "w"})

        # Byte-identical to a freshly loaded single store.
        fresh = PossStore()
        fresh.insert_rows(session.rows())
        assert serialize(store) == serialize(fresh)
        fresh.close()
        session.close()

    def test_structural_delta_spans_all_shards(self, network):
        store = ShardedPossStore(2)
        session = IncrementalSession(network, store=store, keys=("k0", "k1"))
        session.apply(RemoveUser("x4"))
        fresh = PossStore()
        fresh.insert_rows(session.rows())
        assert serialize(store) == serialize(fresh)
        fresh.close()
        session.close()


class TestGcBatchScoping:
    def test_gc_paused_only_inside_the_apply_batch(self, network):
        """The ROADMAP PR-2 note: a long-lived session must not hold the
        cyclic collector off between apply batches."""
        observed = []
        original = PossStore.delete_user_rows

        def observing_delete(self, users, key=None):
            observed.append(gc.isenabled())
            return original(self, users, key=key)

        session = IncrementalSession(network, store=PossStore())
        assert gc.isenabled(), "session construction must restore the GC"
        PossStore.delete_user_rows = observing_delete
        try:
            session.apply(SetBelief("x4", "v"))
        finally:
            PossStore.delete_user_rows = original
        assert gc.isenabled(), "the GC pause must end with the batch"
        assert observed, "the delta path should have issued a DELETE"
        session.close()

    def test_gc_state_of_caller_is_preserved(self, network):
        session = IncrementalSession(network, store=PossStore())
        gc.disable()
        try:
            session.apply(SetBelief("x4", "zz"))
            assert not gc.isenabled(), "a disabled collector stays disabled"
        finally:
            gc.enable()
        session.close()
