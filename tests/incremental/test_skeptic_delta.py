"""The Skeptic (Algorithm 2) delta resolver vs. from-scratch resolution."""

from __future__ import annotations

import random

import pytest

from repro.core.beliefs import BeliefSet
from repro.core.errors import NetworkError
from repro.core.network import TrustNetwork
from repro.core.skeptic import resolve_skeptic
from repro.incremental.deltas import (
    AddTrust,
    RemoveBelief,
    RemoveTrust,
    RemoveUser,
    SetBelief,
    SetPriority,
)
from repro.incremental.skeptic import SkepticDeltaResolver
from repro.workloads.updates import generate_update_stream


def random_constrained_network(
    seed: int, n_nodes: int = 8, n_values: int = 3
) -> TrustNetwork:
    """A random binary network with distinct priorities and mixed beliefs."""
    rng = random.Random(seed)
    users = [f"u{i}" for i in range(n_nodes)]
    values = [f"val{i}" for i in range(n_values)]
    tn = TrustNetwork(users=users)
    for child in users:
        priorities = rng.sample(range(1, 10), 2)
        count = 0
        for _ in range(2):
            if count >= 2 or rng.random() > 0.7:
                continue
            parent = rng.choice(users)
            if parent == child:
                continue
            if any(m.parent == parent for m in tn.incoming(child)):
                continue
            tn.add_trust(child, parent, priority=priorities[count])
            count += 1
    for user in users:
        if tn.incoming(user):
            continue
        roll = rng.random()
        if roll < 0.4:
            tn.set_explicit_belief(user, rng.choice(values))
        elif roll < 0.65:
            tn.set_explicit_belief(
                user,
                BeliefSet.from_negatives(rng.sample(values, rng.randint(1, 2))),
            )
    return tn


def assert_matches_full(resolver: SkepticDeltaResolver) -> None:
    oracle = resolve_skeptic(resolver.network)
    got = resolver.result()
    assert got.representations == oracle.representations
    assert got.pref_neg == oracle.pref_neg
    assert got.domain == oracle.domain


class TestSkepticDeltas:
    def _filter_network(self):
        tn = TrustNetwork()
        tn.add_trust("x", "filter", priority=2)
        tn.add_trust("x", "source", priority=1)
        tn.set_explicit_belief("filter", BeliefSet.from_negatives(["bad"]))
        tn.set_explicit_belief("source", "good")
        return tn

    def test_constraint_blocks_new_value(self):
        resolver = SkepticDeltaResolver(self._filter_network())
        assert resolver.result().possible_positive_values("x") == frozenset(
            {"good"}
        )
        resolver.apply(SetBelief("source", "bad"))
        # The filtered value is rejected along the preferred chain: x
        # cannot accept it, so x floods to bottom.
        assert resolver.result().possible_positive_values("x") == frozenset()
        assert resolver.result().representation("x").has_bottom
        assert_matches_full(resolver)

    def test_constraint_update_reaches_pref_neg(self):
        resolver = SkepticDeltaResolver(self._filter_network())
        resolver.apply(SetBelief("filter", BeliefSet.from_negatives(["good"])))
        assert resolver.result().forced_negative_values("x") == frozenset(
            {"good"}
        )
        assert_matches_full(resolver)

    def test_structural_deltas(self):
        resolver = SkepticDeltaResolver(self._filter_network())
        resolver.apply(RemoveTrust("x", "filter"))
        assert_matches_full(resolver)
        resolver.apply(AddTrust("y", "x", 5))
        assert_matches_full(resolver)
        resolver.apply(SetPriority("y", "x", 7))
        assert_matches_full(resolver)
        resolver.apply(RemoveUser("source"))
        assert_matches_full(resolver)
        resolver.apply(RemoveBelief("filter"))
        assert_matches_full(resolver)

    def test_tie_creating_deltas_are_rejected(self):
        resolver = SkepticDeltaResolver(self._filter_network())
        resolver.apply(AddTrust("y", "x", 5))
        with pytest.raises(NetworkError):
            resolver.apply(AddTrust("y", "filter", 5))  # ties y's parents
        with pytest.raises(NetworkError):
            resolver.apply(SetPriority("x", "source", 2))  # ties x's parents
        assert_matches_full(resolver)

    def test_cofinite_negative_belief_rejected(self):
        resolver = SkepticDeltaResolver(self._filter_network())
        with pytest.raises(NetworkError):
            resolver.apply(SetBelief("source", BeliefSet.bottom()))


@pytest.mark.parametrize("seed", range(120))
def test_skeptic_stream_matches_full_resolution(seed):
    network = random_constrained_network(seed)
    stream = generate_update_stream(
        network,
        n_ops=12,
        seed=seed * 13 + 5,
        distinct_priorities=True,
    )
    resolver = SkepticDeltaResolver(network)
    for delta in stream:
        resolver.apply(delta)
        oracle = resolve_skeptic(network)
        got = resolver.result()
        assert got.representations == oracle.representations, (seed, delta)
        assert got.pref_neg == oracle.pref_neg, (seed, delta)
        assert got.domain == oracle.domain, (seed, delta)
