"""Cross-validation of the three resolution routes on shared workloads.

Algorithm 1, the logic-program baseline and the bulk SQL executor implement
the same semantics through very different machinery; these tests run them on
the evaluation workloads (small parameterizations) and require identical
answers.
"""

from __future__ import annotations

import pytest

from repro.bulk import BulkResolver
from repro.core.binarize import binarize
from repro.core.resolution import resolve
from repro.core.skeptic import resolve_skeptic
from repro.logicprog.solver import solve_network_brave, solve_network_cautious
from repro.workloads.bulkload import BELIEF_USERS, figure19_network, generate_objects
from repro.workloads.oscillators import oscillator_network
from repro.workloads.powerlaw import WebWorkloadConfig, web_trust_network
from repro.workloads.worstcase import worstcase_network


class TestAlgorithmVersusLogicProgram:
    def test_oscillator_workload(self):
        network = oscillator_network(2)
        reference = resolve(network)
        brave = solve_network_brave(network)
        cautious = solve_network_cautious(network)
        for user in network.users:
            assert set(brave.get(str(user), frozenset())) == set(
                reference.possible_values(user)
            )
            assert set(cautious.get(str(user), frozenset())) == set(
                reference.certain_values(user)
            )

    def test_small_web_sample(self):
        network = web_trust_network(
            WebWorkloadConfig(n_domains=20, edges_per_node=2, seed=13)
        )
        reference = resolve(network)
        brave = solve_network_brave(network)
        for user in network.users:
            assert set(brave.get(str(user), frozenset())) == set(
                map(str, reference.possible_values(user))
            ), user

    def test_worstcase_family_small(self):
        network = worstcase_network(0)
        reference = resolve(network)
        brave = solve_network_brave(network)
        for user in network.users:
            assert set(brave.get(str(user), frozenset())) == set(
                reference.possible_values(user)
            ), user


class TestAlgorithmVersusBulk:
    def test_figure19_objects(self):
        network = figure19_network()
        rows = generate_objects(25, conflict_probability=0.6, seed=23)
        resolver = BulkResolver(network, explicit_users=BELIEF_USERS)
        resolver.load_beliefs(rows)
        resolver.run()
        by_key = {}
        for user, key, value in rows:
            by_key.setdefault(key, []).append((user, value))
        for key, beliefs in by_key.items():
            per_object = network.copy()
            for user, value in beliefs:
                per_object.set_explicit_belief(user, value)
            reference = resolve(binarize(per_object).btn)
            for user in network.users:
                assert set(resolver.possible_values(user, key)) == set(
                    map(str, reference.possible_values(user))
                ), (user, key)
        resolver.store.close()

    def test_oscillator_bulk_many_objects(self):
        network = oscillator_network(1)
        resolver = BulkResolver(network)
        rows = []
        for index in range(30):
            rows.append(("c0.x3", f"k{index}", f"a{index}"))
            rows.append(("c0.x4", f"k{index}", f"a{index}" if index % 2 else f"b{index}"))
        resolver.load_beliefs(rows)
        resolver.run()
        for index in range(30):
            expected = {f"a{index}"} if index % 2 else {f"a{index}", f"b{index}"}
            assert set(resolver.possible_values("c0.x1", f"k{index}")) == expected
        resolver.store.close()


class TestAlgorithm1VersusAlgorithm2:
    def test_positive_only_workloads_agree(self):
        # Algorithm 2 forbids ties (Definition 3.3), so only the tie-free
        # oscillator workload is compared here.
        for network in (oscillator_network(2), oscillator_network(4)):
            reference = resolve(network)
            skeptic = resolve_skeptic(network)
            for user in network.users:
                assert skeptic.possible_positive_values(user) == reference.possible_values(
                    user
                ), user
