"""Unit tests for terms, atoms, literals and rules."""

from __future__ import annotations

import pytest

from repro.core.errors import LogicProgramError, UnsafeRuleError
from repro.logicprog.atoms import Atom, Literal, Rule, Variable, fact, is_variable, var


class TestAtoms:
    def test_variables_and_constants(self):
        atom = Atom("poss", ("alice", var("X")))
        assert not atom.is_ground
        assert atom.variables() == frozenset({Variable("X")})
        assert is_variable(var("X"))
        assert not is_variable("alice")

    def test_ground_atom(self):
        atom = Atom("poss", ("alice", "cow"))
        assert atom.is_ground
        assert atom.arity == 2

    def test_substitution(self):
        atom = Atom("poss", (var("U"), var("V")))
        ground = atom.substitute({Variable("U"): "alice", Variable("V"): "cow"})
        assert ground == Atom("poss", ("alice", "cow"))

    def test_partial_substitution_keeps_unbound_variables(self):
        atom = Atom("poss", (var("U"), var("V")))
        partial = atom.substitute({Variable("U"): "alice"})
        assert partial.terms[0] == "alice"
        assert is_variable(partial.terms[1])


class TestLiterals:
    def test_positive_and_negative(self):
        atom = Atom("poss", ("alice", "cow"))
        assert Literal.pos(atom).positive
        assert not Literal.neg(atom).positive

    def test_builtin_not_equal(self):
        literal = Literal.not_equal("a", "b")
        assert literal.is_builtin
        assert literal.evaluate_builtin()
        assert not Literal.not_equal("a", "a").evaluate_builtin()

    def test_builtin_with_variables_substitutes(self):
        literal = Literal.not_equal(var("X"), "b")
        ground = literal.substitute({Variable("X"): "b"})
        assert not ground.evaluate_builtin()

    def test_builtin_with_unbound_variable_raises(self):
        with pytest.raises(LogicProgramError):
            Literal.not_equal(var("X"), "b").evaluate_builtin()

    def test_evaluate_builtin_on_non_builtin_raises(self):
        with pytest.raises(LogicProgramError):
            Literal.pos(Atom("p", ("a",))).evaluate_builtin()


class TestRules:
    def test_fact_constructor(self):
        rule = fact("poss", "alice", "cow")
        assert rule.is_fact
        assert rule.head == Atom("poss", ("alice", "cow"))

    def test_fact_with_variable_rejected(self):
        with pytest.raises(LogicProgramError):
            fact("poss", var("X"))

    def test_safety_accepts_bound_variables(self):
        rule = Rule(
            head=Atom("poss", ("x", var("V"))),
            body=(Literal.pos(Atom("poss", ("z", var("V")))),),
        )
        rule.check_safety()  # must not raise

    def test_safety_rejects_unbound_head_variable(self):
        rule = Rule(head=Atom("poss", ("x", var("V"))))
        with pytest.raises(UnsafeRuleError):
            rule.check_safety()

    def test_safety_rejects_variable_bound_only_negatively(self):
        rule = Rule(
            head=Atom("p", ("x",)),
            body=(Literal.neg(Atom("q", (var("V"),))),),
        )
        with pytest.raises(UnsafeRuleError):
            rule.check_safety()

    def test_rule_substitution(self):
        rule = Rule(
            head=Atom("p", (var("X"),)),
            body=(Literal.pos(Atom("q", (var("X"),))), Literal.not_equal(var("X"), "a")),
        )
        ground = rule.substitute({Variable("X"): "b"})
        assert ground.head == Atom("p", ("b",))
        assert ground.body[1].evaluate_builtin()
