"""Tests for the high-level stable-model solver (the DLV substitute)."""

from __future__ import annotations

import pytest

from repro.core.network import TrustNetwork
from repro.core.resolution import resolve
from repro.logicprog.solver import (
    StableModelSolver,
    solve_network,
    solve_network_brave,
    solve_network_cautious,
)
from repro.logicprog.translate import POSS, btn_to_program


class TestSolveNetwork:
    def test_brave_equals_possible_values(self, oscillator_network):
        brave = solve_network_brave(oscillator_network)
        reference = resolve(oscillator_network)
        for user in oscillator_network.users:
            assert set(brave.get(str(user), frozenset())) == set(
                reference.possible_values(user)
            )

    def test_cautious_equals_certain_values(self, oscillator_network):
        cautious = solve_network_cautious(oscillator_network)
        reference = resolve(oscillator_network)
        for user in oscillator_network.users:
            expected = set(reference.certain_values(user))
            assert set(cautious.get(str(user), frozenset())) == expected

    def test_report_contains_instrumentation(self, simple_network):
        report = solve_network(simple_network, semantics="brave", count_models=True)
        assert report.semantics == "brave"
        assert report.ground_rules > 0
        assert report.stable_models == 1
        assert report.elapsed_seconds >= 0
        assert report.values_for("x1") == frozenset({"v"})

    def test_unknown_semantics_rejected(self, simple_network):
        solver = StableModelSolver(btn_to_program(simple_network))
        with pytest.raises(ValueError):
            solver.query(POSS, semantics="wishful")

    def test_binary_translation_is_default_for_binary_networks(self, simple_network):
        auto = solve_network(simple_network)
        forced = solve_network(simple_network, binary=True)
        assert auto.answers == forced.answers

    def test_direct_translation_for_non_binary_networks(self):
        tn = TrustNetwork(
            mappings=[("a", 1, "x"), ("b", 2, "x"), ("c", 3, "x")],
            explicit_beliefs={"a": "va", "b": "vb", "c": "vc"},
        )
        report = solve_network(tn)  # auto-selects the direct translation
        assert report.values_for("x") == frozenset({"vc"})

    def test_ground_rules_cached(self, simple_network):
        solver = StableModelSolver(btn_to_program(simple_network))
        first = solver.ground_rules()
        assert solver.ground_rules() is first

    def test_stable_models_listing(self, oscillator_network):
        solver = StableModelSolver(btn_to_program(oscillator_network))
        models = solver.stable_models()
        assert len(models) == 2
        assert len(solver.stable_models(max_models=1)) == 1
