"""Unit tests for grounding, reducts and stable-model enumeration."""

from __future__ import annotations

import pytest

from repro.logicprog.atoms import Atom, Literal, Rule, fact, var
from repro.logicprog.program import GroundRule, LogicProgram
from repro.logicprog.stable import (
    brave_consequences,
    cautious_consequences,
    count_stable_models,
    enumerate_stable_models,
    is_stable_model,
    least_model,
    negated_atoms,
    reduct,
)


def ground(program: LogicProgram):
    return program.ground()


def atom(name, *terms):
    return Atom(name, tuple(terms))


class TestGrounding:
    def test_facts_survive_grounding(self):
        program = LogicProgram([fact("p", "a")])
        rules = ground(program)
        assert len(rules) == 1
        assert rules[0].head == atom("p", "a")

    def test_rule_grounds_over_active_domain(self):
        program = LogicProgram(
            [
                fact("p", "a"),
                fact("p", "b"),
                Rule(head=atom("q", var("X")), body=(Literal.pos(atom("p", var("X"))),)),
            ]
        )
        heads = {rule.head for rule in ground(program)}
        assert atom("q", "a") in heads and atom("q", "b") in heads

    def test_builtin_filters_instantiations(self):
        program = LogicProgram(
            [
                fact("p", "a"),
                fact("p", "b"),
                Rule(
                    head=atom("q", var("X")),
                    body=(
                        Literal.pos(atom("p", var("X"))),
                        Literal.not_equal(var("X"), "a"),
                    ),
                ),
            ]
        )
        rules = [rule for rule in ground(program) if rule.head.predicate == "q"]
        assert len(rules) == 1
        assert rules[0].head == atom("q", "b")

    def test_constants_collects_all_terms(self):
        program = LogicProgram(
            [
                fact("p", "a"),
                Rule(
                    head=atom("q", var("X")),
                    body=(
                        Literal.pos(atom("p", var("X"))),
                        Literal.not_equal(var("X"), "zzz"),
                    ),
                ),
            ]
        )
        assert program.constants() == frozenset({"a", "zzz"})

    def test_to_dlv_source_round_trips_syntax(self):
        program = LogicProgram(
            [
                fact("poss", "z1", "v"),
                Rule(
                    head=atom("poss", "x", var("X")),
                    body=(Literal.pos(atom("poss", "z1", var("X"))),),
                ),
            ]
        )
        source = program.to_dlv_source()
        assert "poss(z1,v)." in source
        assert "poss(x,X) :- poss(z1,X)." in source


class TestLeastModelAndReduct:
    def test_least_model_of_chain(self):
        rules = [
            GroundRule(head=atom("a")),
            GroundRule(head=atom("b"), positive_body=(atom("a"),)),
            GroundRule(head=atom("c"), positive_body=(atom("b"),)),
            GroundRule(head=atom("d"), positive_body=(atom("e"),)),
        ]
        model = least_model(rules)
        assert model == frozenset({atom("a"), atom("b"), atom("c")})

    def test_reduct_removes_blocked_rules_and_negations(self):
        rules = [
            GroundRule(head=atom("a")),
            GroundRule(head=atom("b"), negative_body=(atom("a"),)),
            GroundRule(head=atom("c"), negative_body=(atom("d"),)),
        ]
        reduced = reduct(rules, {atom("a")})
        heads = {rule.head for rule in reduced}
        assert atom("b") not in heads
        assert atom("c") in heads
        assert all(not rule.negative_body for rule in reduced)

    def test_negated_atoms_collection(self):
        rules = [
            GroundRule(head=atom("b"), negative_body=(atom("a"),)),
            GroundRule(head=atom("c"), positive_body=(atom("b"),)),
        ]
        assert negated_atoms(rules) == frozenset({atom("a")})


class TestStableModels:
    def test_definite_program_has_single_stable_model(self):
        rules = [
            GroundRule(head=atom("a")),
            GroundRule(head=atom("b"), positive_body=(atom("a"),)),
        ]
        models = list(enumerate_stable_models(rules))
        assert models == [frozenset({atom("a"), atom("b")})]

    def test_even_negation_cycle_has_two_models(self):
        # a :- not b.   b :- not a.
        rules = [
            GroundRule(head=atom("a"), negative_body=(atom("b"),)),
            GroundRule(head=atom("b"), negative_body=(atom("a"),)),
        ]
        models = {frozenset(m) for m in enumerate_stable_models(rules)}
        assert models == {frozenset({atom("a")}), frozenset({atom("b")})}
        assert count_stable_models(rules) == 2

    def test_odd_negation_cycle_has_no_model(self):
        # a :- not a.
        rules = [GroundRule(head=atom("a"), negative_body=(atom("a"),))]
        assert list(enumerate_stable_models(rules)) == []
        assert not is_stable_model(rules, set())
        assert not is_stable_model(rules, {atom("a")})

    def test_unsupported_interpretation_is_not_stable(self):
        rules = [GroundRule(head=atom("a"))]
        assert is_stable_model(rules, {atom("a")})
        assert not is_stable_model(rules, {atom("a"), atom("b")})

    def test_brave_and_cautious_consequences(self):
        rules = [
            GroundRule(head=atom("a"), negative_body=(atom("b"),)),
            GroundRule(head=atom("b"), negative_body=(atom("a"),)),
            GroundRule(head=atom("c"), positive_body=(atom("a"),)),
            GroundRule(head=atom("c"), positive_body=(atom("b"),)),
        ]
        brave = brave_consequences(rules)
        cautious = cautious_consequences(rules)
        assert atom("a") in brave and atom("b") in brave
        assert cautious == frozenset({atom("c")})

    def test_max_models_limit(self):
        rules = [
            GroundRule(head=atom("a"), negative_body=(atom("b"),)),
            GroundRule(head=atom("b"), negative_body=(atom("a"),)),
        ]
        assert len(list(enumerate_stable_models(rules, max_models=1))) == 1

    def test_stratified_program_matches_textbook_semantics(self):
        # win(X) :- move(X, Y), not win(Y).  on a 3-chain: a -> b -> c
        program = LogicProgram(
            [
                fact("move", "a", "b"),
                fact("move", "b", "c"),
                Rule(
                    head=atom("win", var("X")),
                    body=(
                        Literal.pos(atom("move", var("X"), var("Y"))),
                        Literal.neg(atom("win", var("Y"))),
                    ),
                ),
            ]
        )
        models = list(enumerate_stable_models(program.ground()))
        assert len(models) == 1
        wins = {a.terms[0] for a in models[0] if a.predicate == "win"}
        assert wins == {"b"}
