"""Tests for the trust-network → logic-program translations (Theorem 2.9)."""

from __future__ import annotations

import pytest

from repro.core.binarize import binarize
from repro.core.bruteforce import possible_values_bruteforce
from repro.core.errors import NetworkError
from repro.core.network import TrustNetwork
from repro.logicprog.solver import StableModelSolver, solve_network
from repro.logicprog.translate import CONF, POSS, btn_to_program, tn_to_program


class TestBinaryTranslation:
    def test_example_b1_single_preferred_and_non_preferred(self):
        # Figure 13c with b0(z1)=v (low priority) and b0(z2)=w (high priority).
        tn = TrustNetwork()
        tn.add_trust("x", "z1", priority=1)
        tn.add_trust("x", "z2", priority=2)
        tn.set_explicit_belief("z1", "v")
        tn.set_explicit_belief("z2", "w")
        program = btn_to_program(tn)
        solver = StableModelSolver(program)
        brave = solver.query(POSS, "brave")
        # Example B.1: x has only one possible value, namely w.
        assert ("x", "w") in brave
        assert ("x", "v") not in brave
        assert solver.count_models() == 1

    def test_example_b1_tied_parents(self):
        # Figure 13d: both parents tied; x has two possible values.
        tn = TrustNetwork()
        tn.add_trust("x", "z1", priority=1)
        tn.add_trust("x", "z2", priority=1)
        tn.set_explicit_belief("z1", "v")
        tn.set_explicit_belief("z2", "w")
        solver = StableModelSolver(btn_to_program(tn))
        brave = solver.query(POSS, "brave")
        cautious = solver.query(POSS, "cautious")
        assert ("x", "v") in brave and ("x", "w") in brave
        assert ("x", "v") not in cautious and ("x", "w") not in cautious
        assert solver.count_models() == 2

    def test_oscillator_has_two_stable_models(self, oscillator_network):
        solver = StableModelSolver(btn_to_program(oscillator_network))
        assert solver.count_models() == 2

    def test_rule_count_is_linear_in_edges(self, oscillator_network):
        program = btn_to_program(oscillator_network)
        # 2 facts + per node: preferred rule (1) + guarded pair (2).
        assert program.size() == 2 + 2 * 3
        assert CONF in program.predicates()

    def test_non_binary_network_rejected(self):
        tn = TrustNetwork(
            mappings=[("a", 1, "x"), ("b", 2, "x"), ("c", 3, "x")],
            explicit_beliefs={"a": "v"},
        )
        with pytest.raises(NetworkError):
            btn_to_program(tn)


class TestDirectTranslation:
    def test_example_b2_rule_shape(self):
        # The non-binary node of Figure 12a: parents z1 < z2 < z3.
        tn = TrustNetwork()
        tn.add_trust("x", "z1", priority=1)
        tn.add_trust("x", "z2", priority=2)
        tn.add_trust("x", "z3", priority=3)
        tn.set_explicit_belief("z1", "a")
        tn.set_explicit_belief("z2", "b")
        tn.set_explicit_belief("z3", "c")
        program = tn_to_program(tn)
        source = program.to_dlv_source()
        # One plain import for the top parent, blocking rules for the others.
        assert "poss(x,X) :- poss(z3,X)." in source
        assert source.count("conf(x,z1,X)") >= 2  # blocked by z2 and z3
        assert source.count("conf(x,z2,X)") >= 1  # blocked by z3

    def test_direct_translation_matches_bruteforce(self):
        tn = TrustNetwork()
        tn.add_trust("x", "z1", priority=1)
        tn.add_trust("x", "z2", priority=2)
        tn.add_trust("x", "z3", priority=3)
        tn.set_explicit_belief("z1", "a")
        tn.set_explicit_belief("z2", "b")
        expected = possible_values_bruteforce(tn)
        report = solve_network(tn, semantics="brave", binary=False)
        for user in tn.users:
            assert set(report.values_for(user)) == set(expected[user]), user

    def test_direct_translation_handles_shared_priorities(self):
        tn = TrustNetwork()
        tn.add_trust("x", "z1", priority=1)
        tn.add_trust("x", "z2", priority=1)
        tn.add_trust("x", "z3", priority=5)
        tn.set_explicit_belief("z1", "a")
        tn.set_explicit_belief("z2", "b")
        expected = possible_values_bruteforce(tn)
        report = solve_network(tn, semantics="brave", binary=False)
        for user in tn.users:
            assert set(report.values_for(user)) == set(expected[user]), user

    def test_binary_and_direct_translations_agree_after_binarization(self):
        tn = TrustNetwork()
        tn.add_trust("x", "z1", priority=1)
        tn.add_trust("x", "z2", priority=2)
        tn.add_trust("x", "z3", priority=3)
        tn.add_trust("z2", "x", priority=1)
        tn.set_explicit_belief("z1", "a")
        tn.set_explicit_belief("z3", "c")
        direct = solve_network(tn, semantics="brave", binary=False)
        binarized = binarize(tn).btn
        via_btn = solve_network(binarized, semantics="brave", binary=True)
        for user in tn.users:
            assert set(direct.values_for(user)) == set(via_btn.values_for(user)), user
