"""Run comparison: per-span-name aggregation, deltas, and the CLI."""

from __future__ import annotations

from repro.obs import Span, compare_runs, export_jsonl, format_comparison
from repro.obs.compare import main


def _span(name, span_id, started, ended, thread="t", instant=False):
    span = Span(
        name,
        span_id=span_id,
        parent_id=None,
        thread=thread,
        started=started,
        tags={"instant": True} if instant else None,
    )
    span.ended = ended
    return span


def _baseline():
    return [
        _span("copy", 1, 0.0, 1.0),
        _span("flood", 2, 1.0, 3.0),
        _span("fault", 3, 1.5, 1.5, instant=True),
    ]


def _candidate():
    return [
        _span("copy", 1, 0.0, 0.5),
        # Two overlapped flood workers: unioned to 1.0s, not summed to 1.6s.
        _span("flood", 2, 1.0, 1.8, thread="w0"),
        _span("flood", 3, 1.2, 2.0, thread="w1"),
        _span("retry", 4, 2.0, 2.1),
    ]


class TestCompareRuns:
    def test_rows_sorted_by_absolute_delta(self):
        rows = compare_runs(_baseline(), _candidate())
        assert [row["span"] for row in rows] == ["flood", "copy", "retry"]

    def test_overlap_unioned_and_ratios(self):
        rows = {row["span"]: row for row in compare_runs(_baseline(), _candidate())}
        flood = rows["flood"]
        assert flood["count_a"] == 1 and flood["count_b"] == 2
        assert abs(flood["seconds_b"] - 1.0) < 1e-9  # union, overlap once
        assert abs(flood["ratio"] - 0.5) < 1e-9
        assert abs(rows["copy"]["delta_seconds"] + 0.5) < 1e-9
        # A span name absent from the baseline has no ratio.
        assert rows["retry"]["ratio"] is None
        assert rows["retry"]["count_a"] == 0
        # Instants never make a row.
        assert "fault" not in rows

    def test_min_seconds_filter(self):
        rows = compare_runs(_baseline(), _candidate(), min_seconds=0.4)
        assert [row["span"] for row in rows] == ["flood", "copy"]

    def test_format_comparison(self):
        text = format_comparison(compare_runs(_baseline(), _candidate()))
        lines = text.splitlines()
        assert lines[0].split() == [
            "span", "count", "baseline", "candidate", "delta", "ratio",
        ]
        assert any("flood" in line and "1->2" in line for line in lines)
        assert any(line.rstrip().endswith("-") for line in lines[2:])  # no-ratio row


class TestCli:
    def test_main_diffs_two_jsonl_files(self, tmp_path, capsys):
        base = str(tmp_path / "base.jsonl")
        cand = str(tmp_path / "cand.jsonl")
        export_jsonl(_baseline(), base)
        export_jsonl(_candidate(), cand)
        assert main([base, cand]) == 0
        out = capsys.readouterr().out
        assert "flood" in out and "copy" in out and "retry" in out

    def test_main_min_seconds(self, tmp_path, capsys):
        base = str(tmp_path / "base.jsonl")
        cand = str(tmp_path / "cand.jsonl")
        export_jsonl(_baseline(), base)
        export_jsonl(_candidate(), cand)
        assert main([base, cand, "--min-seconds", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "retry" not in out
