"""End-to-end tracing through the engine: the acceptance scenario.

A traced ``materialize(compiled=True)`` on a sharded file-backed store must
export a valid Chrome trace whose spans cover (essentially all of) the
verb's wall time, show the shard replay lanes overlapping, and aggregate to
exactly the counts the run report carries.  Tracing must also be inert:
the POSS relation is byte-identical with tracing on and off, and
``phase_seconds`` never over-counts overlapped workers.
"""

from __future__ import annotations

import json

import pytest

from repro import ResolutionEngine
from repro.bulk.backends import SqliteFileBackend
from repro.bulk.executor import BulkResolver, ConcurrentBulkResolver
from repro.bulk.store import PossStore, ShardedPossStore
from repro.incremental import SetBelief
from repro.obs import Tracer, export_chrome_trace
from repro.workloads.bulkload import (
    BELIEF_USERS,
    chain_network,
    figure19_network,
    generate_objects,
)
from tests.conftest import random_binary_network


def _belief_chain(depth: int):
    """The scheduler-experiment chain with explicit beliefs installed."""
    network = chain_network(depth)
    network.set_explicit_belief(BELIEF_USERS[0], "v")
    network.set_explicit_belief(BELIEF_USERS[1], "w")
    return network


def _poss_bytes(store) -> bytes:
    rows = sorted((row.user, row.key, row.value) for row in store.possible_table())
    return "\n".join("|".join(row) for row in rows).encode()


def _descendants(spans, root):
    """All spans in the subtree under ``root`` (excluding the root)."""
    children = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    out, frontier = [], [root.span_id]
    while frontier:
        next_frontier = []
        for parent_id in frontier:
            for child in children.get(parent_id, ()):
                out.append(child)
                next_frontier.append(child.span_id)
        frontier = next_frontier
    return out


class TestAcceptance:
    """Traced compiled materialize on two file-backed shards."""

    @pytest.fixture(scope="class")
    def traced_run(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("obs-acceptance")
        backends = [
            SqliteFileBackend(str(directory / f"shard{i}.db")) for i in range(2)
        ]
        store = ShardedPossStore(2, backends=backends)
        engine = ResolutionEngine.open(
            _belief_chain(400),
            store=store,
            keys=tuple(f"k{i}" for i in range(6)),
        )
        report = engine.materialize(compiled=True, trace=True)
        yield engine, report, report.trace
        engine.close()

    def test_trace_handle_and_root_span(self, traced_run):
        _engine, report, tracer = traced_run
        assert isinstance(tracer, Tracer)
        (root,) = tracer.spans_named("engine.materialize")
        assert root.tags["compiled"] is True
        assert root.tags["statements"] == report.statements
        assert root.tags["rows"] == report.rows_inserted
        assert root.tags["shards"] == 2
        assert root.tags["scheduler"] == "compiled"
        assert report.scheduler == "compiled"
        assert report.bulk.regions_compiled > 0

    def test_span_tree_well_formed(self, traced_run):
        _engine, _report, tracer = traced_run
        spans = tracer.spans
        ids = {span.span_id for span in spans}
        for span in spans:
            assert span.parent_id is None or span.parent_id in ids, span
            assert span.ended is not None and span.ended >= span.started
        (root,) = tracer.spans_named("engine.materialize")
        for name in ("engine.plan", "engine.compile", "engine.load_beliefs"):
            (child,) = tracer.spans_named(name)
            assert child.parent_id == root.span_id
            assert child.started >= root.started
            assert child.ended <= root.ended

    def test_coverage_of_wall_time(self, traced_run):
        _engine, _report, tracer = traced_run
        # The materialize root span accounts for the whole recorded window…
        assert tracer.coverage() >= 0.99
        # …and its direct children attribute the bulk of the inside of it
        # (the remainder is executor setup and report assembly glue).
        (root,) = tracer.spans_named("engine.materialize")
        children = [s for s in tracer.spans if s.parent_id == root.span_id]
        assert tracer.coverage(children) >= 0.50

    def test_shard_lanes_overlap(self, traced_run):
        _engine, _report, tracer = traced_run
        lanes = tracer.spans_named("shard.replay")
        assert {span.tags["shard"] for span in lanes} == {0, 1}
        latest_start = max(span.started for span in lanes)
        earliest_end = min(span.ended for span in lanes)
        assert earliest_end > latest_start  # the replay lanes ran concurrently
        assert {span.thread for span in lanes} == {"shard0", "shard1"}

    def test_aggregates_equal_report(self, traced_run):
        _engine, report, tracer = traced_run
        bulk = report.bulk
        (run,) = tracer.spans_named("bulk.run")
        # report.statements counts plan-execution statements: exactly the
        # statement spans inside the shard replay lanes (the bulk.run spans
        # outside the lanes are transaction/row-count bookkeeping).
        spans = tracer.spans
        replayed = []
        for lane in tracer.spans_named("shard.replay"):
            assert lane.parent_id == run.span_id
            replayed.extend(_descendants(spans, lane))
        statements = [s for s in replayed if s.name == "statement"]
        attempts = [s for s in replayed if s.name == "attempt"]
        faults = [s for s in replayed if s.name == "fault"]
        assert len(statements) == bulk.statements
        assert len(attempts) == bulk.statements + bulk.retries
        assert len(faults) == bulk.faults_injected
        assert run.tags["statements"] == bulk.statements
        assert run.tags["rows"] == bulk.rows_inserted
        assert tracer.metrics.get("poss.retries") == bulk.retries
        assert tracer.metrics.get("poss.timeouts") == bulk.timed_out_statements

    def test_chrome_export_valid(self, traced_run, tmp_path):
        _engine, _report, tracer = traced_run
        path = str(tmp_path / "acceptance-trace.json")
        count = export_chrome_trace(tracer, path)
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        events = document["traceEvents"]
        assert count == len(events) and count > 0
        threads = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert {"MainThread", "shard0", "shard1"} <= threads
        for event in events:
            assert event["ph"] in ("M", "X", "i")
            if event["ph"] == "X":
                assert event["ts"] >= 0.0 and event["dur"] >= 0.0


class TestApplyTracing:
    def test_apply_records_session_subtree(self):
        with ResolutionEngine.open(_belief_chain(10)) as engine:
            engine.materialize()
            report = engine.apply(SetBelief(BELIEF_USERS[0], "w2"), trace=True)
            tracer = report.trace
            assert isinstance(tracer, Tracer)
            (root,) = tracer.spans_named("engine.apply")
            assert root.tags["statements"] == report.statements
            (batch,) = tracer.spans_named("session.apply_batch")
            assert batch.parent_id == root.span_id
            assert tracer.spans_named("session.coalesce")
            assert tracer.spans_named("session.recompute")
            assert tracer.spans_named("session.flush")
            assert (
                tracer.metrics.get("poss.statements.delta") == report.statements
            )


class TestTracingIsInert:
    def test_100_networks_byte_identical(self):
        """Tracing on/off leaves the POSS relation byte-identical."""
        for seed in range(100):
            network = random_binary_network(seed)
            with ResolutionEngine.open(network) as plain:
                plain.materialize()
                baseline = _poss_bytes(plain.store)
                plain_report = plain.materialize(compiled=True)
                compiled_baseline = _poss_bytes(plain.store)
            with ResolutionEngine.open(network) as traced:
                traced.materialize(trace=True)
                assert _poss_bytes(traced.store) == baseline, seed
                traced_report = traced.materialize(compiled=True, trace=True)
                assert _poss_bytes(traced.store) == compiled_baseline, seed
                assert traced_report.statements == plain_report.statements, seed

    def test_apply_byte_identical(self):
        def run(trace: bool) -> bytes:
            with ResolutionEngine.open(_belief_chain(20)) as engine:
                engine.materialize(trace=trace)
                engine.apply(SetBelief(BELIEF_USERS[0], "w9"), trace=trace)
                return _poss_bytes(engine.store)

        assert run(trace=False) == run(trace=True)


class TestPhaseSeconds:
    """Regression lock for the phase-attribution double count.

    ``phase_seconds`` values are unions of the recording lanes' intervals,
    so their sum can never exceed the run's wall clock — not even when
    several workers or shard lanes execute the same phase concurrently
    (which is exactly where the old per-lane sum over-counted).
    """

    def _check(self, report):
        assert report.phase_seconds, report
        for phase, seconds in report.phase_seconds.items():
            assert 0.0 <= seconds <= report.elapsed_seconds + 1e-6, (
                phase,
                report.phase_seconds,
                report.elapsed_seconds,
            )
        assert (
            sum(report.phase_seconds.values()) <= report.elapsed_seconds + 1e-6
        ), (report.phase_seconds, report.elapsed_seconds)

    def test_sharded_lanes_do_not_double_count(self, tmp_path):
        backends = [
            SqliteFileBackend(str(tmp_path / f"phase{i}.db")) for i in range(2)
        ]
        store = ShardedPossStore(2, backends=backends)
        resolver = ConcurrentBulkResolver(
            chain_network(200), store=store, explicit_users=BELIEF_USERS
        )
        resolver.load_beliefs(generate_objects(20, seed=3))
        report = resolver.run()
        store.close()
        assert report.shards == 2
        self._check(report)

    def test_statement_workers_do_not_double_count(self, tmp_path):
        # Statement workers only engage on stores whose driver supports
        # concurrent replay — a file-backed sqlite store, not :memory:.
        store = PossStore(backend=SqliteFileBackend(str(tmp_path / "w.db")))
        resolver = BulkResolver(
            figure19_network(), store=store, explicit_users=BELIEF_USERS, workers=4
        )
        resolver.load_beliefs(generate_objects(200, seed=11))
        report = resolver.run()
        store.close()
        assert report.workers == 4
        self._check(report)

    def test_serial_run_still_attributed(self):
        resolver = BulkResolver(figure19_network(), explicit_users=BELIEF_USERS)
        resolver.load_beliefs(generate_objects(50, seed=7))
        report = resolver.run()
        resolver.store.close()
        self._check(report)
        assert report.phase_seconds["copy"] > 0.0
