"""Exporter round trips: JSON-lines, Chrome trace_event, plain-text tree."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import (
    Span,
    Tracer,
    chrome_trace,
    export_chrome_trace,
    export_jsonl,
    format_span_tree,
    load_spans,
)


@pytest.fixture
def recorded() -> Tracer:
    """A small two-thread trace: a run span, a worker lane, an instant."""
    tracer = Tracer()
    root = tracer.start("bulk.run", scheduler="pipelined")
    with tracer.span("statement", op="insert"):
        tracer.event("fault", site="execute")

    def lane() -> None:
        with tracer.span("shard.replay", parent=root, shard=1):
            with tracer.span("statement", op="flood"):
                pass

    thread = threading.Thread(target=lane, name="shard1")
    thread.start()
    thread.join()
    tracer.finish(root)
    return tracer


class TestJsonl:
    def test_round_trip(self, recorded, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        written = export_jsonl(recorded, path)
        assert written == len(recorded.spans)
        loaded = load_spans(path)
        assert [s.to_dict() for s in loaded] == [
            s.to_dict() for s in recorded.spans
        ]

    def test_span_list_input(self, recorded, tmp_path):
        path = str(tmp_path / "subset.jsonl")
        subset = recorded.spans_named("statement")
        assert export_jsonl(subset, path) == 2
        assert [s.name for s in load_spans(path)] == ["statement", "statement"]


class TestChromeTrace:
    def test_document_structure(self, recorded):
        document = chrome_trace(recorded)
        events = document["traceEvents"]
        assert document["displayTimeUnit"] == "ms"
        json.dumps(document)  # the whole document must be JSON-serializable

        meta = [e for e in events if e["ph"] == "M"]
        durations = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(meta) == 2  # one thread_name record per recording thread
        assert {e["args"]["name"] for e in meta} == {"MainThread", "shard1"}
        assert len(durations) == len([s for s in recorded.spans if not s.instant])
        assert len(instants) == 1 and instants[0]["s"] == "t"

        for event in durations + instants:
            assert event["pid"] == 1
            assert event["ts"] >= 0.0  # microseconds relative to the origin
            assert event["cat"] == event["name"].split(".", 1)[0]
            assert "span_id" in event["args"]
        assert all(e["dur"] >= 0.0 for e in durations)

    def test_parent_edges_and_tids(self, recorded):
        events = chrome_trace(recorded)["traceEvents"]
        tid_of = {
            e["args"]["name"]: e["tid"] for e in events if e["ph"] == "M"
        }
        shard = next(e for e in events if e["name"] == "shard.replay")
        root = next(e for e in events if e["name"] == "bulk.run")
        assert shard["tid"] == tid_of["shard1"]
        assert root["tid"] == tid_of["MainThread"]
        assert shard["args"]["parent_id"] == root["args"]["span_id"]
        assert "parent_id" not in root["args"]

    def test_export_writes_valid_json(self, recorded, tmp_path):
        path = str(tmp_path / "trace.json")
        count = export_chrome_trace(recorded, path)
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        assert count == len(document["traceEvents"])
        assert count > 0

    def test_empty_trace(self):
        assert chrome_trace([]) == {"traceEvents": [], "displayTimeUnit": "ms"}


class TestSpanTree:
    def test_nesting_and_markers(self, recorded):
        text = format_span_tree(recorded)
        lines = text.splitlines()
        assert lines[0].startswith("- bulk.run ")
        assert any(line.startswith("  - statement") for line in lines)
        assert any(line.startswith("    ! fault") for line in lines)
        assert any("[shard1]" in line for line in lines)
        assert "'instant'" not in text  # bookkeeping tag is hidden

    def test_orphans_promoted_to_roots(self):
        orphan = Span("lost", span_id=7, parent_id=99, thread="t", started=0.0)
        orphan.ended = 1.0
        text = format_span_tree([orphan], unit="s")
        assert text == "- lost 1.000s [t]"
