"""MetricsRegistry: counters, histograms, snapshots and span aggregation."""

from __future__ import annotations

import threading

from repro.obs import MetricsRegistry, Tracer


class TestCounters:
    def test_counter_accumulates(self):
        metrics = MetricsRegistry()
        metrics.counter("poss.statements.bulk")
        metrics.counter("poss.statements.bulk", 4)
        assert metrics.get("poss.statements.bulk") == 5
        assert metrics.get("missing") == 0
        assert metrics.get("missing", default=7) == 7

    def test_delta_since_snapshot(self):
        metrics = MetricsRegistry()
        metrics.counter("a", 2)
        baseline = metrics.counters()
        metrics.counter("a", 3)
        metrics.counter("b")
        assert metrics.delta(baseline) == {"a": 3, "b": 1}
        # Unchanged counters are omitted from the delta entirely.
        assert metrics.delta(metrics.counters()) == {}

    def test_concurrent_increments_lose_nothing(self):
        metrics = MetricsRegistry()
        n_threads, per_thread = 8, 1000

        def bump():
            for _ in range(per_thread):
                metrics.counter("hits")

        threads = [threading.Thread(target=bump) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert metrics.get("hits") == n_threads * per_thread


class TestHistograms:
    def test_values_and_summary(self):
        metrics = MetricsRegistry()
        for value in (0.3, 0.1, 0.2):
            metrics.histogram("phase.copy", value)
        assert metrics.values("phase.copy") == [0.3, 0.1, 0.2]
        stats = metrics.snapshot()["histograms"]["phase.copy"]
        assert stats["count"] == 3
        assert abs(stats["total"] - 0.6) < 1e-9
        assert stats["min"] == 0.1
        assert stats["max"] == 0.3
        assert abs(stats["mean"] - 0.2) < 1e-9
        assert stats["p50"] == 0.2
        assert stats["p95"] == 0.3

    def test_snapshot_shape(self):
        metrics = MetricsRegistry()
        metrics.counter("c", 2)
        snap = metrics.snapshot()
        assert snap == {"counters": {"c": 2}, "histograms": {}}

    def test_format_lists_counters_and_histograms(self):
        metrics = MetricsRegistry()
        metrics.counter("poss.retries", 3)
        metrics.histogram("phase.flood", 0.5)
        text = metrics.format()
        assert "poss.retries = 3" in text
        assert "phase.flood: count=1" in text


class TestFromSpans:
    def test_aggregates_counts_and_durations(self):
        tracer = Tracer()
        with tracer.span("bulk.run"):
            with tracer.span("statement"):
                pass
            with tracer.span("statement"):
                pass
            tracer.event("fault")
        derived = MetricsRegistry.from_spans(tracer.spans)
        assert derived.get("spans.statement") == 2
        assert derived.get("spans.bulk.run") == 1
        assert derived.get("events.fault") == 1
        assert derived.get("spans.fault") == 0
        assert len(derived.values("span_seconds.statement")) == 2
