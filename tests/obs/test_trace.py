"""Span-tree invariants for the tracing core (repro.obs.trace).

The properties every consumer relies on: spans nest properly (thread-local
within a thread, explicit ``parent=`` across threads), no finished span is
orphaned, timestamps are monotonic, and concurrent recording from many
threads loses nothing.
"""

from __future__ import annotations

import threading

from repro.obs import NullTracer, Span, Tracer, interval_union
from repro.obs.trace import NULL_SPAN, NULL_TRACER


class TestIntervalUnion:
    def test_empty(self):
        assert interval_union([]) == 0.0

    def test_disjoint_intervals_sum(self):
        assert interval_union([(0.0, 1.0), (2.0, 3.0)]) == 2.0

    def test_overlap_counted_once(self):
        assert interval_union([(0.0, 2.0), (1.0, 3.0)]) == 3.0

    def test_contained_interval_adds_nothing(self):
        assert interval_union([(0.0, 4.0), (1.0, 2.0)]) == 4.0

    def test_empty_and_inverted_intervals_skipped(self):
        assert interval_union([(1.0, 1.0), (3.0, 2.0), (0.0, 1.0)]) == 1.0

    def test_order_independent(self):
        intervals = [(4.0, 6.0), (0.0, 2.0), (1.0, 5.0)]
        assert interval_union(intervals) == interval_union(reversed(intervals))
        assert interval_union(intervals) == 6.0

    def test_union_bounded_by_sum_and_extent(self):
        intervals = [(0.0, 1.5), (1.0, 2.0), (5.0, 5.5)]
        union = interval_union(intervals)
        assert union <= sum(end - start for start, end in intervals)
        assert union <= max(e for _, e in intervals) - min(s for s, _ in intervals)


class TestSpanTree:
    def test_thread_local_nesting(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None
        names = [span.name for span in tracer.spans]
        assert names == ["inner", "outer"]  # completion order

    def test_explicit_parent_overrides_stack(self):
        tracer = Tracer()
        root = tracer.start("root")
        with tracer.span("sibling"):
            child = tracer.start("child", parent=root)
            assert child.parent_id == root.span_id
            tracer.finish(child)
        tracer.finish(root)

    def test_no_orphans(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                tracer.event("e")
            with tracer.span("c"):
                pass
        ids = {span.span_id for span in tracer.spans}
        for span in tracer.spans:
            assert span.parent_id is None or span.parent_id in ids, span

    def test_timestamps_monotonic_and_nested(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.started <= inner.started
        assert inner.ended <= outer.ended
        for span in tracer.spans:
            assert span.ended is not None and span.ended >= span.started
            assert span.duration >= 0.0

    def test_finish_out_of_order_keeps_stack_balanced(self):
        tracer = Tracer()
        outer = tracer.start("outer")
        tracer.start("inner")
        # Finishing the outer span defensively pops the forgotten inner one.
        tracer.finish(outer)
        assert tracer.current() is None

    def test_double_finish_keeps_first_end(self):
        tracer = Tracer()
        span = tracer.finish(tracer.start("s"))
        first_end = span.ended
        tracer.finish(span)
        assert span.ended == first_end

    def test_event_is_instant(self):
        tracer = Tracer()
        with tracer.span("run") as run:
            event = tracer.event("fault", site="execute")
        assert event.instant
        assert event.ended == event.started
        assert event.parent_id == run.span_id
        assert event.tags["site"] == "execute"
        assert not run.instant

    def test_tags_and_tag_chaining(self):
        tracer = Tracer()
        span = tracer.start("s", shard=1)
        assert span.tag(outcome="ok") is span
        tracer.finish(span)
        assert span.tags == {"shard": 1, "outcome": "ok"}

    def test_mark_since_and_clear(self):
        tracer = Tracer()
        tracer.finish(tracer.start("first"))
        mark = tracer.mark()
        tracer.finish(tracer.start("second"))
        assert [s.name for s in tracer.since(mark)] == ["second"]
        assert [s.name for s in tracer.spans_named("first")] == ["first"]
        tracer.clear()
        assert tracer.spans == []

    def test_round_trip_dict(self):
        tracer = Tracer()
        with tracer.span("run", shard=0):
            tracer.event("fault")
        for span in tracer.spans:
            clone = Span.from_dict(span.to_dict())
            assert clone.to_dict() == span.to_dict()


class TestThreadSafety:
    def test_concurrent_spans_all_collected(self):
        tracer = Tracer()
        root = tracer.start("root")
        n_threads, per_thread = 8, 50

        def lane(index: int) -> None:
            lane_span = tracer.start("lane", parent=root, lane=index)
            for step in range(per_thread):
                with tracer.span("step", step=step):
                    pass
            tracer.finish(lane_span)

        threads = [
            threading.Thread(target=lane, args=(i,), name=f"lane{i}")
            for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        tracer.finish(root)

        spans = tracer.spans
        assert len(spans) == 1 + n_threads * (1 + per_thread)
        ids = [span.span_id for span in spans]
        assert len(ids) == len(set(ids))  # no id was handed out twice
        lanes = tracer.spans_named("lane")
        assert {span.tags["lane"] for span in lanes} == set(range(n_threads))
        assert all(span.parent_id == root.span_id for span in lanes)
        lane_ids = {span.span_id for span in lanes}
        for step in tracer.spans_named("step"):
            assert step.parent_id in lane_ids  # nested via its own thread's stack


class TestCoverage:
    def _span(self, span_id, started, ended, parent=None, instant=False):
        span = Span(
            "s",
            span_id=span_id,
            parent_id=parent,
            thread="t",
            started=started,
            tags={"instant": True} if instant else None,
        )
        span.ended = ended
        return span

    def test_full_window(self):
        tracer = Tracer()
        spans = [self._span(1, 0.0, 10.0), self._span(2, 2.0, 4.0, parent=1)]
        assert tracer.coverage(spans) == 1.0

    def test_gap_reduces_coverage(self):
        tracer = Tracer()
        spans = [self._span(1, 0.0, 4.0), self._span(2, 6.0, 10.0)]
        assert abs(tracer.coverage(spans) - 0.8) < 1e-9

    def test_instants_ignored(self):
        tracer = Tracer()
        spans = [self._span(1, 0.0, 1.0), self._span(2, 9.0, 9.0, instant=True)]
        assert tracer.coverage(spans) == 1.0

    def test_no_spans(self):
        assert Tracer().coverage() == 0.0


class TestNullTracer:
    def test_disabled_and_inert(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        assert tracer.start("x") is NULL_SPAN
        assert tracer.event("x") is NULL_SPAN
        with tracer.span("x") as span:
            assert span is NULL_SPAN
            assert span.tag(anything=1) is NULL_SPAN
        assert tracer.spans == []
        assert tracer.current() is None
        assert tracer.coverage() == 0.0
        assert tracer.since(tracer.mark()) == []

    def test_null_metrics_inert(self):
        metrics = NULL_TRACER.metrics
        metrics.counter("c")
        metrics.histogram("h", 1.0)
        assert metrics.get("c") == 0
        assert metrics.counters() == {}
        assert metrics.snapshot() == {"counters": {}, "histograms": {}}
        assert metrics.delta({}) == {}
        assert metrics.format() == ""

    def test_shared_instance_exported(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
