"""Tests for the CI benchmark-regression guard (benchmarks/check_regression.py)."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.check_regression import find_regressions, load_scenarios, main


def _write(path, scenarios):
    path.write_text(json.dumps({"scenarios": scenarios}))
    return str(path)


class TestFindRegressions:
    def test_regression_over_threshold_is_reported(self):
        baseline = {"a": {"seconds": 0.1}}
        current = {"a": {"seconds": 0.25}}
        regressions, compared, factor = find_regressions(baseline, current)
        assert compared == 1 and factor == 1.0
        assert regressions == [("a", 0.1, 0.25, pytest.approx(2.5))]

    def test_within_threshold_passes(self):
        baseline = {"a": {"seconds": 0.1}}
        current = {"a": {"seconds": 0.19}}
        regressions, compared, _factor = find_regressions(baseline, current)
        assert compared == 1 and regressions == []

    def test_noise_floor_skips_tiny_baselines(self):
        baseline = {"a": {"seconds": 0.0004}}
        current = {"a": {"seconds": 0.04}}  # 100x, but sub-noise baseline
        regressions, compared, _factor = find_regressions(baseline, current)
        assert compared == 0 and regressions == []

    def test_new_and_retired_scenarios_are_skipped(self):
        baseline = {"old": {"seconds": 1.0}}
        current = {"new": {"seconds": 9.0}}
        regressions, compared, _factor = find_regressions(baseline, current)
        assert compared == 0 and regressions == []

    def test_non_numeric_seconds_are_skipped(self):
        baseline = {"a": {"seconds": "fast"}, "b": {}}
        current = {"a": {"seconds": 1.0}, "b": {"seconds": 1.0}}
        regressions, compared, _factor = find_regressions(baseline, current)
        assert compared == 0 and regressions == []

    def test_threshold_is_configurable(self):
        baseline = {"a": {"seconds": 0.1}}
        current = {"a": {"seconds": 0.15}}
        regressions, _compared, _factor = find_regressions(
            baseline, current, threshold=1.2
        )
        assert len(regressions) == 1

    def test_uniformly_slow_machine_is_normalized_away(self):
        """A CI runner 3x slower than the baseline machine shifts every
        ratio; the median normalization must not flag that as regression."""
        baseline = {f"s{i}": {"seconds": 0.1} for i in range(6)}
        current = {f"s{i}": {"seconds": 0.3} for i in range(6)}
        regressions, compared, factor = find_regressions(baseline, current)
        assert compared == 6
        assert factor == pytest.approx(3.0)
        assert regressions == []

    def test_true_regression_sticks_out_of_a_slow_machine(self):
        baseline = {f"s{i}": {"seconds": 0.1} for i in range(6)}
        current = {f"s{i}": {"seconds": 0.3} for i in range(6)}
        current["s5"] = {"seconds": 2.0}  # 20x vs 3x machine factor
        regressions, _compared, factor = find_regressions(baseline, current)
        assert factor == pytest.approx(3.0)
        assert [scenario for scenario, *_ in regressions] == ["s5"]

    def test_fast_machine_never_masks_regressions(self):
        """The machine factor is clamped at 1.0: on a 10x faster runner an
        absolute 3x regression must still be flagged."""
        baseline = {f"s{i}": {"seconds": 1.0} for i in range(6)}
        current = {f"s{i}": {"seconds": 0.1} for i in range(6)}
        current["s5"] = {"seconds": 3.0}
        regressions, _compared, factor = find_regressions(baseline, current)
        assert factor == 1.0
        assert [scenario for scenario, *_ in regressions] == ["s5"]

    def test_normalization_can_be_disabled(self):
        baseline = {f"s{i}": {"seconds": 0.1} for i in range(6)}
        current = {f"s{i}": {"seconds": 0.3} for i in range(6)}
        regressions, _compared, factor = find_regressions(
            baseline, current, normalize=False
        )
        assert factor == 1.0
        assert len(regressions) == 6


class TestCli:
    def test_exit_zero_without_regressions(self, tmp_path, capsys):
        baseline = _write(tmp_path / "base.json", {"a": {"seconds": 0.1}})
        current = _write(tmp_path / "cur.json", {"a": {"seconds": 0.11}})
        assert main(["--baseline", baseline, "--current", current]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_exit_one_with_regressions(self, tmp_path, capsys):
        baseline = _write(tmp_path / "base.json", {"a": {"seconds": 0.1}})
        current = _write(tmp_path / "cur.json", {"a": {"seconds": 0.5}})
        assert main(["--baseline", baseline, "--current", current]) == 1
        out = capsys.readouterr().out
        assert "1 regression(s)" in out and "5.00x" in out

    def test_load_rejects_malformed_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"scenarios": ["not", "a", "mapping"]}))
        with pytest.raises(ValueError, match="not a mapping"):
            load_scenarios(str(bad))

    def test_real_bench_json_loads(self):
        """The committed BENCH_resolution.json is valid input for the guard."""
        path = Path(__file__).resolve().parent.parent / "BENCH_resolution.json"
        scenarios = load_scenarios(str(path))
        assert scenarios
        regressions, compared, factor = find_regressions(scenarios, scenarios)
        assert compared > 0 and regressions == [] and factor == 1.0
