"""Tests for the community-database front end (order-invariant curation)."""

from __future__ import annotations

import pytest

from repro.community import CommunityDatabase
from repro.workloads.indus import GLYPH_BELIEFS, TRUST_MAPPINGS


@pytest.fixture
def indus_db():
    db = CommunityDatabase(mappings=TRUST_MAPPINGS)
    for glyph, beliefs in GLYPH_BELIEFS.items():
        for user, value in beliefs.items():
            db.insert(user, glyph, value)
    return db


class TestUpdates:
    def test_snapshot_matches_figure_1b(self, indus_db):
        assert indus_db.certain_value("glyph-ship", "Alice") == "ship hull"
        assert indus_db.certain_value("glyph-fish", "Alice") == "fish"
        assert indus_db.certain_value("glyph-arrow", "Alice") == "arrow"

    def test_insert_order_does_not_matter(self):
        orders = [
            [("Charlie", "jar"), ("Bob", "cow")],
            [("Bob", "cow"), ("Charlie", "jar")],
        ]
        snapshots = []
        for order in orders:
            db = CommunityDatabase(mappings=TRUST_MAPPINGS)
            for user, value in order:
                db.insert(user, "glyph", value)
            snapshots.append(db.certain_value("glyph", "Alice"))
        assert snapshots == ["cow", "cow"]

    def test_update_is_reflected_immediately(self):
        db = CommunityDatabase(mappings=TRUST_MAPPINGS)
        db.insert("Charlie", "glyph", "jar")
        assert db.certain_value("glyph", "Alice") == "jar"
        db.update("Charlie", "glyph", "cow")
        assert db.certain_value("glyph", "Alice") == "cow"

    def test_revoke_removes_derived_values(self):
        db = CommunityDatabase(mappings=TRUST_MAPPINGS)
        db.insert("Charlie", "glyph", "jar")
        db.revoke("Charlie", "glyph")
        assert db.certain_value("glyph", "Alice") is None
        assert db.possible_values("glyph", "Alice") == frozenset()
        assert db.objects() == frozenset()

    def test_revoke_of_unknown_belief_is_noop(self):
        db = CommunityDatabase(mappings=TRUST_MAPPINGS)
        db.revoke("Charlie", "glyph")
        assert db.objects() == frozenset()

    def test_adding_trust_invalidates_cached_snapshots(self):
        db = CommunityDatabase()
        db.insert("bob", "k", "fish")
        db.insert("charlie", "k", "knot")
        db.add_trust("alice", "charlie", priority=10)
        assert db.certain_value("k", "alice") == "knot"
        db.add_trust("alice", "bob", priority=20)
        assert db.certain_value("k", "alice") == "fish"


class TestSnapshots:
    def test_snapshot_separates_certain_from_conflicts(self):
        db = CommunityDatabase()
        db.add_trust("x", "a", priority=1)
        db.add_trust("x", "b", priority=1)
        db.insert("a", "k", "va")
        db.insert("b", "k", "vb")
        snapshot = db.snapshot("k")
        assert snapshot.certain["a"] == "va"
        assert snapshot.value_for("x") is None
        assert snapshot.conflicts["x"] == frozenset({"va", "vb"})
        assert db.conflicting_objects() == frozenset({"k"})

    def test_lineage_passthrough(self, indus_db):
        path = indus_db.lineage("glyph-fish", "Alice", "fish")
        assert path[0].user == "Alice"
        assert path[-1].source is None

    def test_explicit_beliefs_accessor(self, indus_db):
        assert indus_db.explicit_beliefs("glyph-fish") == GLYPH_BELIEFS["glyph-fish"]


class TestBulkPath:
    def test_bulk_assumptions(self, indus_db):
        # Alice has a belief only for the ship glyph, so the assumptions fail.
        assert not indus_db.bulk_assumptions_hold()

    def test_resolve_all_fallback_matches_per_object(self, indus_db):
        answers = indus_db.resolve_all()
        assert answers[("Alice", "glyph-fish")] == frozenset({"fish"})
        assert answers[("Alice", "glyph-ship")] == frozenset({"ship hull"})

    def test_resolve_all_bulk_path(self):
        db = CommunityDatabase(mappings=TRUST_MAPPINGS)
        for index in range(8):
            db.insert("Bob", f"k{index}", f"bob{index}")
            db.insert("Charlie", f"k{index}", f"charlie{index}")
        assert db.bulk_assumptions_hold()
        answers = db.resolve_all()
        for index in range(8):
            assert answers[("Alice", f"k{index}")] == frozenset({f"bob{index}"})
        # The bulk path and the per-object path must agree.
        per_object = {
            (user, key): frozenset(map(str, db.possible_values(key, user)))
            for user in ("Alice", "Bob", "Charlie")
            for key in (f"k{i}" for i in range(8))
        }
        for key, value in per_object.items():
            assert answers[key] == value
