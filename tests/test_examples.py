"""The example scripts must run end to end (they double as integration tests)."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = [
    ("quickstart.py", []),
    ("indus_script.py", []),
    ("update_reconciliation.py", []),
    ("constraint_paradigms.py", []),
    ("bulk_curation.py", ["200"]),
    ("feature_table.py", []),
    ("engine_session.py", []),
]


@pytest.mark.parametrize("script, args", EXAMPLES, ids=[name for name, _ in EXAMPLES])
def test_example_runs_cleanly(script, args):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    completed = subprocess.run(
        [sys.executable, str(path), *args],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
    assert completed.stdout.strip(), "examples should print something"


def test_quickstart_reports_expected_snapshot():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert "alice" in completed.stdout
    assert "fish" in completed.stdout
