"""End-to-end test of the Indus-script running example (Figures 1 and 2)."""

from __future__ import annotations

import pytest

from repro.bulk import BulkResolver
from repro.core.binarize import binarize
from repro.core.network import TrustNetwork
from repro.core.resolution import resolve
from repro.workloads.indus import (
    ALICE_SNAPSHOT,
    GLYPH_BELIEFS,
    TRUST_MAPPINGS,
    all_glyph_networks,
    belief_rows,
    trust_network_for_glyph,
)


class TestFigure1:
    def test_alice_snapshot_matches_figure_1b(self):
        for glyph, network in all_glyph_networks().items():
            result = resolve(binarize(network).btn)
            assert result.certain_value("Alice") == ALICE_SNAPSHOT[glyph], glyph

    def test_ship_glyph_each_archaeologist_keeps_their_own_belief(self):
        network = trust_network_for_glyph("glyph-ship")
        result = resolve(binarize(network).btn)
        assert result.certain_value("Alice") == "ship hull"
        assert result.certain_value("Bob") == "cow"
        assert result.certain_value("Charlie") == "jar"

    def test_fish_glyph_priority_decides(self):
        network = trust_network_for_glyph("glyph-fish")
        result = resolve(binarize(network).btn)
        assert result.certain_value("Alice") == "fish"
        assert result.certain_value("Bob") == "fish"
        assert result.certain_value("Charlie") == "knot"

    def test_arrow_glyph_is_uncontested(self):
        network = trust_network_for_glyph("glyph-arrow")
        result = resolve(binarize(network).btn)
        for user in ("Alice", "Bob", "Charlie"):
            assert result.certain_value(user) == "arrow"

    def test_lineage_of_alices_fish_belief_goes_through_bob(self):
        network = trust_network_for_glyph("glyph-fish")
        result = resolve(binarize(network).btn)
        path = result.trace_lineage("Alice", "fish")
        assert path[0].user == "Alice"
        assert any(step.user == "Bob" for step in path)


class TestBulkIndus:
    def test_bulk_resolution_of_bob_and_charlie_beliefs(self):
        network = TrustNetwork(mappings=TRUST_MAPPINGS)
        resolver = BulkResolver(network, explicit_users=("Bob", "Charlie"))
        resolver.load_beliefs(belief_rows())
        resolver.run()
        # Without Alice's own belief, she sees Bob's value for every glyph.
        assert resolver.possible_values("Alice", "glyph-fish") == frozenset({"fish"})
        assert resolver.possible_values("Alice", "glyph-arrow") == frozenset({"arrow"})
        assert resolver.possible_values("Alice", "glyph-ship") == frozenset({"cow"})
        resolver.store.close()

    def test_belief_rows_cover_every_glyph(self):
        rows = belief_rows()
        keys = {key for _, key, _ in rows}
        assert keys == set(GLYPH_BELIEFS)
        users = {user for user, _, _ in rows}
        assert users == {"Bob", "Charlie"}
