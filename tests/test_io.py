"""Tests for JSON serialization of trust networks."""

from __future__ import annotations

import json

import pytest

from repro.core.beliefs import BeliefSet
from repro.core.errors import NetworkError
from repro.core.network import TrustMapping, TrustNetwork
from repro.io import (
    belief_rows_from_network,
    load_network,
    mappings_from_rows,
    network_from_dict,
    network_to_dict,
    save_network,
)


@pytest.fixture
def sample_network():
    tn = TrustNetwork()
    tn.add_trust("alice", "bob", priority=100)
    tn.add_trust("alice", "charlie", priority=50)
    tn.set_explicit_belief("bob", "fish")
    tn.set_explicit_belief("dora", BeliefSet.from_negatives(["cow", "jar"]))
    return tn


class TestDictRoundTrip:
    def test_round_trip_preserves_structure(self, sample_network):
        document = network_to_dict(sample_network)
        rebuilt = network_from_dict(document)
        assert rebuilt.users == frozenset(map(str, sample_network.users))
        assert set(rebuilt.mappings) == set(sample_network.mappings)
        assert rebuilt.explicit_positive_value("bob") == "fish"
        assert rebuilt.explicit_belief("dora").rejects("cow")
        assert rebuilt.explicit_belief("dora").rejects("jar")

    def test_document_is_json_serializable(self, sample_network):
        text = json.dumps(network_to_dict(sample_network))
        assert "alice" in text

    def test_positive_belief_as_plain_string(self):
        rebuilt = network_from_dict(
            {"users": ["a"], "mappings": [], "beliefs": {"a": "value"}}
        )
        assert rebuilt.explicit_positive_value("a") == "value"

    def test_malformed_mapping_rejected(self):
        with pytest.raises(NetworkError):
            network_from_dict({"mappings": [{"child": "a"}]})

    def test_mixed_belief_entry_rejected(self):
        with pytest.raises(NetworkError):
            network_from_dict(
                {"beliefs": {"a": {"positive": "v", "negative": ["w"]}}}
            )

    def test_cofinite_constraint_cannot_be_serialized(self):
        tn = TrustNetwork(explicit_beliefs={"a": BeliefSet.bottom()})
        with pytest.raises(NetworkError):
            network_to_dict(tn)


class TestFiles:
    def test_save_and_load(self, sample_network, tmp_path):
        path = tmp_path / "network.json"
        save_network(sample_network, path)
        loaded = load_network(path)
        assert loaded.users == frozenset(map(str, sample_network.users))
        assert loaded.explicit_positive_value("bob") == "fish"

    def test_resolution_survives_round_trip(self, sample_network, tmp_path):
        from repro.core.binarize import binarize
        from repro.core.resolution import resolve

        path = tmp_path / "network.json"
        save_network(sample_network, path)
        loaded = load_network(path)
        assert (
            resolve(binarize(loaded).btn).certain_value("alice")
            == resolve(binarize(sample_network).btn).certain_value("alice")
        )


class TestRowHelpers:
    def test_mappings_from_rows(self):
        mappings = mappings_from_rows([("alice", "bob", "3")])
        assert mappings == [TrustMapping("bob", 3, "alice")]

    def test_belief_rows_from_network(self, sample_network):
        rows = belief_rows_from_network(sample_network, key="k1")
        assert ("bob", "k1", "fish") in rows
        assert all(user != "dora" for user, _, _ in rows)
