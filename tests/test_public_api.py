"""The documented top-level API surface must stay importable and usable."""

from __future__ import annotations

import pytest

import repro
from repro import (
    Belief,
    BeliefSet,
    Paradigm,
    TrustNetwork,
    binarize,
    certain_snapshot,
    resolve,
    resolve_skeptic,
    resolve_with_constraints,
)


def test_version_is_exposed():
    assert repro.__version__


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_readme_quickstart_snippet():
    tn = TrustNetwork()
    tn.add_trust("alice", "bob", priority=100)
    tn.add_trust("alice", "charlie", priority=50)
    tn.add_trust("bob", "alice", priority=80)
    tn.set_explicit_belief("bob", "fish")
    tn.set_explicit_belief("charlie", "knot")
    result = resolve(binarize(tn).btn)
    assert result.certain_value("alice") == "fish"


def test_certain_snapshot_helper_is_exported(simple_network):
    assert certain_snapshot(simple_network)["x1"] == "v"


def test_constrained_entry_point_roundtrip():
    tn = TrustNetwork()
    tn.add_trust("x", "filter", priority=2)
    tn.add_trust("x", "source", priority=1)
    tn.set_explicit_belief("filter", BeliefSet.from_negatives(["bad"]))
    tn.set_explicit_belief("source", "good")
    for paradigm in ("A", "E", "S", Paradigm.SKEPTIC):
        resolution = resolve_with_constraints(tn, paradigm)
        assert resolution.certain_positive_value("x") == "good"
    assert resolve_skeptic(tn).certain_positive_values("x") == frozenset({"good"})


def test_belief_constructors_are_exported():
    assert Belief.positive("v").is_positive
    assert BeliefSet.bottom().is_bottom
