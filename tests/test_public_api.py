"""The documented top-level API surface must stay importable and usable."""

from __future__ import annotations

import pytest

import repro
from repro import (
    Belief,
    BeliefSet,
    Paradigm,
    TrustNetwork,
    binarize,
    certain_snapshot,
    resolve,
    resolve_skeptic,
    resolve_with_constraints,
)


def test_version_is_exposed():
    assert repro.__version__


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_readme_quickstart_snippet():
    tn = TrustNetwork()
    tn.add_trust("alice", "bob", priority=100)
    tn.add_trust("alice", "charlie", priority=50)
    tn.add_trust("bob", "alice", priority=80)
    tn.set_explicit_belief("bob", "fish")
    tn.set_explicit_belief("charlie", "knot")
    result = resolve(binarize(tn).btn)
    assert result.certain_value("alice") == "fish"


def test_certain_snapshot_helper_is_exported(simple_network):
    assert certain_snapshot(simple_network)["x1"] == "v"


def test_constrained_entry_point_roundtrip():
    tn = TrustNetwork()
    tn.add_trust("x", "filter", priority=2)
    tn.add_trust("x", "source", priority=1)
    tn.set_explicit_belief("filter", BeliefSet.from_negatives(["bad"]))
    tn.set_explicit_belief("source", "good")
    for paradigm in ("A", "E", "S", Paradigm.SKEPTIC):
        resolution = resolve_with_constraints(tn, paradigm)
        assert resolution.certain_positive_value("x") == "good"
    assert resolve_skeptic(tn).certain_positive_values("x") == frozenset({"good"})


def test_belief_constructors_are_exported():
    assert Belief.positive("v").is_positive
    assert BeliefSet.bottom().is_bottom


#: The locked surface of repro.bulk: removing or renaming any of these is a
#: breaking change and must be deliberate (update this list in the same PR).
BULK_API = [
    "BASELINE_INDEXES",
    "BOTTOM_VALUE",
    "BulkResolver",
    "BulkRunReport",
    "COVERING_INDEX",
    "CompiledPlan",
    "CompiledRegion",
    "ConcurrentBulkResolver",
    "CopyStep",
    "DEFAULT_MAX_BIND_PARAMS",
    "DagNode",
    "DbApiBackend",
    "FloodStep",
    "GroupedCopyStep",
    "INDEX_STRATEGIES",
    "IndexStrategy",
    "NO_INDEXES",
    "PlanDag",
    "PlanPatch",
    "PossRow",
    "PossStore",
    "RegionLimits",
    "RegionSchedule",
    "ResolutionPlan",
    "SCHEDULERS",
    "ShardSpec",
    "ShardedPossStore",
    "SkepticBulkResolver",
    "SqlBackend",
    "SqlDialect",
    "SqliteFileBackend",
    "SqliteMemoryBackend",
    "compile_plan",
    "patch_plan",
    "plan_dag",
    "plan_resolution",
    "plan_skeptic_resolution",
    "probe_max_bind_params",
    "region_schedule",
    "replay_dag",
    "resolve_dialect",
    "splice_compiled",
    "sqlite_dialect",
    "sqlite_max_bind_params",
]


def test_bulk_surface_is_locked():
    import repro.bulk

    assert sorted(repro.bulk.__all__) == BULK_API
    for name in repro.bulk.__all__:
        assert hasattr(repro.bulk, name), name


#: The locked surface of repro.incremental (same contract as BULK_API).
INCREMENTAL_API = [
    "AddTrust",
    "Delta",
    "DeltaApplyReport",
    "DeltaLog",
    "DeltaResolver",
    "IncrementalSession",
    "RemoveBelief",
    "RemoveTrust",
    "RemoveUser",
    "RowChange",
    "SetBelief",
    "SetPriority",
    "SkepticDeltaLog",
    "SkepticDeltaResolver",
    "SkepticRowChange",
    "coalesce",
    "is_structural",
]


def test_incremental_surface_is_locked():
    import repro.incremental

    assert sorted(repro.incremental.__all__) == INCREMENTAL_API
    for name in repro.incremental.__all__:
        assert hasattr(repro.incremental, name), name


def test_incremental_round_trip():
    """The new names work together end to end through the public surface."""
    from repro.incremental import (
        DeltaResolver,
        IncrementalSession,
        SetBelief,
        is_structural,
    )

    tn = TrustNetwork()
    tn.add_trust("mirror", "source", priority=1)
    tn.set_explicit_belief("source", "v")
    resolver = DeltaResolver(tn)
    log = resolver.apply(SetBelief("source", "w"))
    assert not is_structural(log.delta)
    assert resolver.possible["mirror"] == frozenset({"w"})

    session = IncrementalSession(tn.copy())
    report = session.apply(SetBelief("source", "z"))
    assert report.transactions == 1
    assert session.store.possible_values("mirror", "k0") == frozenset({"z"})
    session.close()


def test_sharded_engine_round_trip():
    """The new names work together end to end through the public surface."""
    from repro.bulk import ConcurrentBulkResolver, ShardSpec, ShardedPossStore

    tn = TrustNetwork()
    tn.add_trust("mirror", "source", priority=1)
    store = ShardedPossStore(ShardSpec.hashed(2))
    resolver = ConcurrentBulkResolver(tn, store=store, explicit_users=["source"])
    resolver.load_beliefs([("source", "k0", "v"), ("source", "k1", "w")])
    report = resolver.run()
    assert report.shards == 2
    assert report.dag_stages == resolver.dag.stage_count
    assert report.scheduler == "pipelined"
    assert store.possible_values("mirror", "k0") == frozenset({"v"})
    assert store.possible_values("mirror", "k1") == frozenset({"w"})
    store.close()


def test_compiled_engine_round_trip():
    """compile_plan -> scheduler="compiled" -> EngineReport through the
    public surface: the compiled run is byte-identical and cheaper."""
    from repro import ResolutionEngine
    from repro.bulk import CompiledPlan, CompiledRegion, compile_plan, plan_resolution

    tn = TrustNetwork()
    tn.add_trust("b", "a", priority=1)
    tn.add_trust("c", "b", priority=1)
    tn.add_trust("d", "c", priority=1)
    tn.set_explicit_belief("a", "v")

    compiled = compile_plan(plan_resolution(tn))
    assert isinstance(compiled, CompiledPlan)
    assert all(isinstance(region, CompiledRegion) for region in compiled.regions)
    assert compiled.statement_count() < compiled.replay_statement_count()

    with ResolutionEngine.open(tn.copy()) as plain:
        plain.materialize()
        reference = sorted(plain.store.possible_table())
    with ResolutionEngine.open(tn) as engine:
        report = engine.materialize(compiled=True)
        assert report.scheduler == "compiled"
        assert report.regions_compiled >= 1
        assert report.statements_saved > 0
        assert report.statements < report.statements_saved + report.statements
        assert sorted(engine.store.possible_table()) == reference


#: The locked surface of repro.engine (same contract as BULK_API).
ENGINE_API = [
    "EngineReport",
    "MODES",
    "ResolutionEngine",
]


def test_engine_surface_is_locked():
    import repro.engine

    assert sorted(repro.engine.__all__) == ENGINE_API
    for name in repro.engine.__all__:
        assert hasattr(repro.engine, name), name
    # The façade is re-exported at the top level.
    import repro

    assert repro.ResolutionEngine is repro.engine.ResolutionEngine
    assert repro.EngineReport is repro.engine.EngineReport
    assert "ResolutionEngine" in repro.__all__
    assert "EngineReport" in repro.__all__


def test_unified_engine_round_trip():
    """resolve -> materialize -> apply -> query through the public surface."""
    from repro import ResolutionEngine
    from repro.incremental import SetBelief

    tn = TrustNetwork()
    tn.add_trust("mirror", "source", priority=1)
    tn.set_explicit_belief("source", "v")
    with ResolutionEngine.open(tn) as engine:
        assert engine.resolve().resolutions["k0"].possible["mirror"] == frozenset(
            {"v"}
        )
        assert engine.materialize().transactions == 1
        report = engine.apply(SetBelief("source", "w"))
        assert report.operation == "apply"
        assert engine.query("mirror") == frozenset({"w"})


FAULTS_API = [
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultInjectingBackend",
    "FaultPolicy",
    "RetryPolicy",
    "ScriptedFault",
]


def test_faults_surface_is_locked():
    import repro.faults

    assert sorted(repro.faults.__all__) == FAULTS_API
    for name in repro.faults.__all__:
        assert hasattr(repro.faults, name), name


#: The locked surface of repro.obs (same contract as BULK_API).
OBS_API = [
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "chrome_trace",
    "compare_runs",
    "export_chrome_trace",
    "export_jsonl",
    "format_comparison",
    "format_span_tree",
    "install_cli_handler",
    "interval_union",
    "load_spans",
]


def test_obs_surface_is_locked():
    import repro.obs

    assert sorted(repro.obs.__all__) == OBS_API
    for name in repro.obs.__all__:
        assert hasattr(repro.obs, name), name


def test_traced_round_trip():
    """materialize(trace=True) records spans behind the public surface."""
    from repro import ResolutionEngine
    from repro.obs import Tracer, chrome_trace

    tn = TrustNetwork()
    tn.add_trust("mirror", "source", priority=1)
    tn.set_explicit_belief("source", "v")
    with ResolutionEngine.open(tn) as engine:
        report = engine.materialize(trace=True)
        tracer = report.trace
        assert isinstance(tracer, Tracer)
        assert tracer.spans_named("engine.materialize")
        assert tracer.spans_named("bulk.run")
        assert tracer.metrics.get("poss.statements.bulk") > 0
        assert chrome_trace(tracer)["traceEvents"]


def test_fault_tolerant_round_trip():
    """Injected transient faults are absorbed behind the public surface."""
    from repro import ResolutionEngine
    from repro.bulk import PossStore, SqliteMemoryBackend
    from repro.faults import FaultInjectingBackend, FaultPolicy, RetryPolicy

    tn = TrustNetwork()
    tn.add_trust("mirror", "source", priority=1)
    tn.set_explicit_belief("source", "v")
    store = PossStore(
        backend=FaultInjectingBackend(
            SqliteMemoryBackend(),
            FaultPolicy(seed=3, probability=0.2, sites=("execute",)),
        ),
        retry_policy=RetryPolicy(max_attempts=8, base_delay=0.0, max_delay=0.0),
    )
    with ResolutionEngine.open(tn, store=store) as engine:
        report = engine.materialize()
        assert engine.query("mirror") == frozenset({"v"})
        assert report.retries == report.faults_injected
