"""Tests for the workload generators used by the evaluation."""

from __future__ import annotations

import pytest

from repro.core.errors import WorkloadError
from repro.core.resolution import resolve
from repro.workloads.bulkload import (
    BELIEF_USERS,
    count_summary,
    figure19_network,
    generate_objects,
    object_sweep,
)
from repro.workloads.cliques import clique_network, clique_size_row
from repro.workloads.oscillators import (
    CLUSTER_SIZE,
    clusters_for_size,
    oscillator_network,
    size_sweep,
)
from repro.workloads.powerlaw import (
    WebWorkloadConfig,
    fraction_sweep,
    sample_edges,
    scale_free_digraph,
    web_trust_network,
)
from repro.workloads.worstcase import (
    expected_sizes,
    parameter_for_size,
    worstcase_network,
)


class TestOscillators:
    def test_cluster_counts(self):
        network = oscillator_network(5)
        assert len(network.users) == 20
        assert len(network.mappings) == 20
        assert network.size == 5 * CLUSTER_SIZE

    def test_every_cluster_has_two_possible_values(self):
        network = oscillator_network(3)
        result = resolve(network)
        for index in range(3):
            assert result.possible_values(f"c{index}.x1") == frozenset({"v", "w"})

    def test_distinct_values_per_cluster(self):
        network = oscillator_network(2, distinct_values_per_cluster=True)
        result = resolve(network)
        assert result.possible_values("c0.x1") == frozenset({"v0", "w0"})
        assert result.possible_values("c1.x1") == frozenset({"v1", "w1"})

    def test_clusters_for_size(self):
        assert clusters_for_size(CLUSTER_SIZE) == 1
        assert clusters_for_size(100) == 13

    def test_size_sweep_is_increasing_and_reaches_target(self):
        sweep = size_sweep(10_000, points=6)
        assert sweep == sorted(sweep)
        assert sweep[-1] == 10_000

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            oscillator_network(0)
        with pytest.raises(WorkloadError):
            clusters_for_size(1)


class TestWorstCase:
    def test_node_and_edge_counts_match_figure14(self):
        for k in (0, 1, 5, 10):
            network = worstcase_network(k)
            users, edges = expected_sizes(k)
            assert len(network.users) == users
            assert len(network.mappings) == edges

    def test_network_is_binary_and_resolvable(self):
        network = worstcase_network(4)
        assert network.is_binary()
        result = resolve(network)
        # Every block node is flooded with both root values.
        assert result.possible_values("y4.1") == frozenset({"v", "w"})

    def test_parameter_for_size(self):
        assert parameter_for_size(10) == 0
        k = parameter_for_size(1000)
        users, edges = expected_sizes(k)
        assert abs((users + edges) - 1000) <= 16

    def test_invalid_parameter(self):
        with pytest.raises(WorkloadError):
            worstcase_network(-1)


class TestWebWorkload:
    def test_scale_free_graph_shape(self):
        graph = scale_free_digraph(500, 3, seed=1)
        assert graph.number_of_nodes() == 500
        degrees = sorted((d for _, d in graph.degree()), reverse=True)
        # Hub-dominated: the largest degree is much bigger than the median.
        assert degrees[0] > 5 * degrees[len(degrees) // 2]

    def test_sampling_keeps_requested_fraction(self):
        graph = scale_free_digraph(300, 3, seed=2)
        edges = sample_edges(graph, 0.25, seed=3)
        assert abs(len(edges) - 0.25 * graph.number_of_edges()) <= 1

    def test_network_is_binary_with_roots_holding_beliefs(self):
        network = web_trust_network(WebWorkloadConfig(n_domains=400, seed=4))
        assert network.is_binary()
        for root in network.roots():
            assert network.has_explicit_belief(root)

    def test_network_resolves_without_conflict_everywhere(self):
        network = web_trust_network(WebWorkloadConfig(n_domains=300, seed=5))
        result = resolve(network)
        # Every user reachable from a root has at least one possible value.
        reachable = network.reachable_from_roots_with_beliefs()
        for user in reachable:
            assert result.possible_values(user)

    def test_determinism_with_seed(self):
        config = WebWorkloadConfig(n_domains=200, seed=9)
        first = web_trust_network(config, edge_fraction=0.5)
        second = web_trust_network(config, edge_fraction=0.5)
        assert first.mappings == second.mappings

    def test_fraction_sweep(self):
        sweep = fraction_sweep(points=5)
        assert sweep[-1] == 1.0
        assert all(0 < f <= 1 for f in sweep)

    def test_invalid_fraction(self):
        graph = scale_free_digraph(50, 2, seed=0)
        with pytest.raises(WorkloadError):
            sample_edges(graph, 0.0, seed=0)


class TestCliquesAndBulk:
    def test_clique_counts(self):
        network = clique_network(5)
        row = clique_size_row(network)
        assert row["users"] == 5
        assert row["edges"] == 20

    def test_clique_minimum_size(self):
        with pytest.raises(WorkloadError):
            clique_network(1)

    def test_figure19_counts(self):
        network = figure19_network()
        summary = count_summary(network)
        assert summary["users"] == 7
        assert summary["mappings"] == 12
        assert summary["belief_users"] == 2
        assert set(BELIEF_USERS) <= set(map(str, network.users))
        assert not network.incoming("x6") and not network.incoming("x7")

    def test_generate_objects_conflicts(self):
        rows = generate_objects(100, conflict_probability=1.0, seed=0)
        by_key = {}
        for user, key, value in rows:
            by_key.setdefault(key, set()).add(value)
        assert all(len(values) == 2 for values in by_key.values())
        rows = generate_objects(100, conflict_probability=0.0, seed=0)
        by_key = {}
        for user, key, value in rows:
            by_key.setdefault(key, set()).add(value)
        assert all(len(values) == 1 for values in by_key.values())

    def test_generate_objects_validation(self):
        with pytest.raises(WorkloadError):
            generate_objects(0)
        with pytest.raises(WorkloadError):
            generate_objects(5, belief_users=("a",))

    def test_object_sweep(self):
        sweep = object_sweep(10_000, points=5)
        assert sweep[-1] == 10_000
        assert sweep == sorted(sweep)


class TestUpdateStreams:
    def _network(self, seed=0):
        from tests.conftest import random_binary_network

        return random_binary_network(seed, n_nodes=8, n_values=3)

    def test_stream_is_deterministic_and_sized(self):
        from repro.workloads.updates import generate_update_stream

        network = self._network()
        first = generate_update_stream(network, n_ops=20, seed=9)
        second = generate_update_stream(network, n_ops=20, seed=9)
        assert first == second
        assert len(first) == 20
        # The input network is never modified by generation.
        assert self._network().mappings == network.mappings

    def test_stream_replays_without_validation_errors(self):
        from repro.incremental.resolver import DeltaResolver
        from repro.workloads.updates import generate_update_stream

        network = self._network(3)
        stream = generate_update_stream(network, n_ops=30, seed=4)
        resolver = DeltaResolver(network)
        for delta in stream:
            resolver.apply(delta)  # raises on any invalid op

    def test_distinct_priorities_mode_never_creates_ties(self):
        from repro.core.network import TrustNetwork
        from repro.workloads.updates import generate_update_stream
        from repro.incremental.deltas import AddTrust, SetPriority

        network = TrustNetwork()
        network.add_trust("b", "a", priority=1)
        network.add_trust("b", "c", priority=2)
        network.add_trust("d", "b", priority=1)
        network.set_explicit_belief("a", "v")
        working = network.copy()
        stream = generate_update_stream(
            working, n_ops=25, seed=11, distinct_priorities=True
        )
        replay = network.copy()
        from repro.incremental.resolver import DeltaResolver

        resolver = DeltaResolver(replay)
        for delta in stream:
            resolver.apply(delta)
            for user in replay.users:
                priorities = [m.priority for m in replay.incoming(user)]
                assert len(priorities) == len(set(priorities)), (delta, user)

    def test_remove_user_respects_floor(self):
        from repro.workloads.updates import generate_update_stream
        from repro.incremental.deltas import RemoveUser
        from repro.incremental.resolver import DeltaResolver

        network = self._network(7)
        floor = len(network.users) - 1
        stream = generate_update_stream(
            network,
            n_ops=25,
            seed=2,
            weights={"remove_user": 5.0},
            min_users=floor,
        )
        assert sum(isinstance(d, RemoveUser) for d in stream) <= 1
        resolver = DeltaResolver(network)
        for delta in stream:
            resolver.apply(delta)

    def test_stream_validation(self):
        from repro.core.errors import WorkloadError
        from repro.workloads.updates import generate_update_stream

        with pytest.raises(WorkloadError):
            generate_update_stream(self._network(), n_ops=0)

    def test_parallel_edges_in_the_input_do_not_crash_generation(self):
        """Parallel mappings between one pair are legal (fan-in <= 2) but
        make set_priority ambiguous; the generator must skip, not raise."""
        from repro.core.network import TrustNetwork
        from repro.incremental.resolver import DeltaResolver
        from repro.workloads.updates import generate_update_stream

        tn = TrustNetwork(
            mappings=[("p", 1, "x"), ("p", 2, "x"), ("r", 1, "y")],
            explicit_beliefs={"p": "v", "r": "w"},
        )
        stream = generate_update_stream(
            tn, n_ops=15, seed=0, weights={"set_priority": 50.0}
        )
        resolver = DeltaResolver(tn)
        for delta in stream:
            resolver.apply(delta)
